//! Byte-exact import → export regression over the golden deck corpus.
//!
//! The files under `tests/golden/` are generated from the cell stack by
//! `crates/core/tests/golden_decks.rs` (regenerate with `BLESS_GOLDEN=1`).
//! This test is the parser-side contract: every golden deck must parse,
//! and its re-export must be byte-identical to the expected form — the
//! file itself for flat decks, the committed `.flat.sp` sibling for the
//! hierarchical array (whose `X` calls flatten on import).

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use tfet_circuit::Deck;
use tfet_devices::model::DeviceModel;
use tfet_devices::standard_models;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn models() -> HashMap<String, Arc<dyn DeviceModel>> {
    standard_models()
}

#[test]
fn every_golden_deck_reexports_byte_exactly() {
    let dir = golden_dir();
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/golden exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "sp"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "golden corpus went missing: {paths:?}");

    let models = models();
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(path).expect("golden file reads");
        let deck =
            Deck::parse(&text, &models).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));

        // A hierarchical deck re-exports as its committed flattened
        // sibling; everything else is its own fixed point.
        let expected_path = match name.strip_suffix(".sp") {
            Some(stem) if !stem.ends_with(".flat") => {
                let flat = dir.join(format!("{stem}.flat.sp"));
                if flat.is_file() {
                    flat
                } else {
                    path.clone()
                }
            }
            _ => path.clone(),
        };
        let expected = fs::read_to_string(&expected_path).expect("expected file reads");
        assert_eq!(
            deck.to_spice(),
            expected,
            "{name} re-export differs from {}",
            expected_path.display()
        );

        // The expected form is itself a serializer fixed point.
        let again = Deck::parse(&expected, &models)
            .unwrap_or_else(|e| panic!("{}: {e}", expected_path.display()));
        assert_eq!(
            again.to_spice(),
            expected,
            "{} is not a fixed point",
            expected_path.display()
        );
    }
}

#[test]
fn flattened_array_has_the_full_cell_population() {
    let text = fs::read_to_string(golden_dir().join("array_8x8.sp")).expect("array deck");
    let deck = Deck::parse(&text, &models()).expect("array parses");
    // 64 cells x 6 transistors, with per-instance dotted names.
    assert_eq!(deck.circuit.transistors().len(), 64 * 6);
    assert!(deck
        .circuit
        .transistors()
        .iter()
        .any(|t| t.name == "r7c7.MAR"));
    assert_eq!(deck.analyses.len(), 1);
}
