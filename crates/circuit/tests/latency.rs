//! Fault-injection and determinism tests for the quiescent-partition
//! latency tier (`tfet_circuit::latency`).
//!
//! The tier's correctness contract has two sides, and each gets a direct
//! counter-asserted test here:
//!
//! * the **guard fires**: a dormant cell adjacent to a moving bitline must
//!   be force-refreshed (`guard_refreshes > 0`) and its waveforms must match
//!   the full-evaluation baseline;
//! * the guard **doesn't storm**: a fully-quiescent hold transient must
//!   never re-evaluate dormant cells (`guard_refreshes == 0`, refreshes
//!   bounded by the initial settle).
//!
//! A third test pins the deterministic parallel evaluation claim: the same
//! array transient, bit-identical at 1, 4 and 8 assembly threads.

use std::sync::Arc;
use tfet_circuit::latency::PAR_EVAL_MIN;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{
    set_assembly_threads, CellPartition, Circuit, DeviceLatency, GuardKind, NodeId, TransientSpec,
    Waveform,
};
use tfet_devices::{NTfet, PTfet};

const VDD: f64 = 0.8;

/// A row of TFET latch cells hanging off one shared bitline/wordline pair:
/// each cell is a cross-coupled inverter pair plus an n-type access device
/// from the bitline to `q`, with the wordline held inactive. One latency
/// partition per cell: the five cell transistors, storage nodes watched,
/// the shared lines guarded.
fn latch_row(n_cells: usize, bl_wave: Waveform) -> (Circuit, Vec<(NodeId, NodeId)>) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(VDD));
    let bl = c.node("bl");
    c.vsource("VBL", bl, Circuit::GND, bl_wave);
    let wl = c.node("wl");
    c.vsource("VWL", wl, Circuit::GND, Waveform::dc(0.0));

    let mut partitions = Vec::new();
    let mut storage = Vec::new();
    for i in 0..n_cells {
        let q = c.node(&format!("q{i}"));
        let qb = c.node(&format!("qb{i}"));
        let d0 = c.transistors().len();
        c.transistor(
            &format!("PU{i}L"),
            Arc::new(PTfet::nominal()),
            q,
            qb,
            vdd,
            0.06,
        );
        c.transistor(
            &format!("PD{i}L"),
            Arc::new(NTfet::nominal()),
            q,
            qb,
            Circuit::GND,
            0.1,
        );
        c.transistor(
            &format!("PU{i}R"),
            Arc::new(PTfet::nominal()),
            qb,
            q,
            vdd,
            0.06,
        );
        c.transistor(
            &format!("PD{i}R"),
            Arc::new(NTfet::nominal()),
            qb,
            q,
            Circuit::GND,
            0.1,
        );
        c.transistor(
            &format!("AX{i}"),
            Arc::new(NTfet::nominal()),
            bl,
            wl,
            q,
            0.1,
        );
        c.capacitor(q, Circuit::GND, 1e-15);
        c.capacitor(qb, Circuit::GND, 1e-15);
        partitions.push(CellPartition {
            devices: (d0..d0 + 5).collect(),
            watch: vec![q, qb],
            guard: vec![wl, bl, vdd],
            guard_kinds: vec![GuardKind::Wordline, GuardKind::Bitline, GuardKind::Rail],
        });
        storage.push((q, qb));
    }
    c.set_latency_partitions(partitions);
    (c, storage)
}

/// Checkerboard hold state: even cells store 1, odd cells store 0.
fn hold_ics(storage: &[(NodeId, NodeId)]) -> Vec<(NodeId, f64)> {
    let mut ics = Vec::new();
    for (i, &(q, qb)) in storage.iter().enumerate() {
        let one = i % 2 == 0;
        ics.push((q, if one { VDD } else { 0.0 }));
        ics.push((qb, if one { 0.0 } else { VDD }));
    }
    ics
}

fn with_lines(mut ics: Vec<(NodeId, f64)>, c: &Circuit, bl0: f64) -> Vec<(NodeId, f64)> {
    ics.push((c.find_node("vdd").unwrap(), VDD));
    ics.push((c.find_node("bl").unwrap(), bl0));
    ics.push((c.find_node("wl").unwrap(), 0.0));
    ics
}

#[test]
fn moving_bitline_force_refreshes_dormant_cells() {
    // Bitline discharges at 1 ns; the wordline never rises, so every cell
    // is a half-select bystander whose internal nodes barely move — only
    // the guard can (and must) trigger the refresh.
    let bl_wave = Waveform::step(VDD, 0.0, 1.0e-9, 20e-12);
    let (c, storage) = latch_row(6, bl_wave.clone());
    let ics = with_lines(hold_ics(&storage), &c, VDD);
    let spec = TransientSpec::new(2.5e-9, 1e-12);

    let on = c.transient(&spec, &InitialState::Uic(ics.clone())).unwrap();
    assert!(
        on.stats.devices_dormant > 0,
        "quiet pre-edge phase must produce dormant stamps, stats: {:?}",
        on.stats
    );
    assert!(
        on.stats.guard_refreshes > 0,
        "bitline edge must force-refresh dormant cells via the guard, stats: {:?}",
        on.stats
    );

    // Per-partition telemetry: the trip attribution must blame the bitline
    // (the only line that moved) and agree with the aggregate counters.
    assert_eq!(on.partitions.len(), storage.len());
    let total_refreshes: u64 = on.partitions.iter().map(|t| t.refreshes).sum();
    let total_guard: u64 = on.partitions.iter().map(|t| t.guard_refreshes()).sum();
    assert_eq!(total_refreshes, on.stats.cells_refreshed);
    assert_eq!(total_guard, on.stats.guard_refreshes);
    for (i, t) in on.partitions.iter().enumerate() {
        assert!(
            t.trips(GuardKind::Bitline) > 0,
            "cell {i}: the discharging bitline must be the attributed cause: {t:?}"
        );
        assert_eq!(
            t.trips(GuardKind::Wordline),
            0,
            "cell {i}: the wordline never rose: {t:?}"
        );
        assert!(t.dormant > 0, "cell {i} never went dormant: {t:?}");
        assert_eq!(t.decisions, t.dormant + t.refreshes, "cell {i}: {t:?}");
    }

    // The full-evaluation baseline must agree on the physics: every cell
    // retains its state, and waveforms match to well under a millivolt.
    let off = c
        .transient(
            &spec.with_device_latency(DeviceLatency::Off),
            &InitialState::Uic(ics),
        )
        .unwrap();
    assert_eq!(off.stats.devices_dormant, 0);
    assert_eq!(off.stats.devices_bypassed, 0);
    for (i, &(q, qb)) in storage.iter().enumerate() {
        let expect_one = i % 2 == 0;
        for node in [q, qb] {
            for &t in &[0.5e-9, 1.2e-9, 2.4e-9] {
                let d = (on.voltage_at(node, t) - off.voltage_at(node, t)).abs();
                assert!(d < 1e-3, "cell {i} node diff {d:e} V at t = {t:e}");
            }
        }
        let v_q = on.voltage_at(q, 2.4e-9);
        assert!(
            if expect_one {
                v_q > 0.7 * VDD
            } else {
                v_q < 0.3 * VDD
            },
            "cell {i} lost its state under half-select: q = {v_q}"
        );
    }
}

#[test]
fn quiescent_hold_never_refreshes_dormant_cells() {
    // Every source DC, initial conditions at the hold state: after the
    // initial settle there is nothing to do, and the tier must prove it —
    // zero guard refreshes, refresh count bounded by the settle, and the
    // bulk of all stamps served dormant.
    let n_cells = 6;
    let (c, storage) = latch_row(n_cells, Waveform::dc(VDD));
    let ics = with_lines(hold_ics(&storage), &c, VDD);
    let spec = TransientSpec::new(4e-9, 1e-12);

    let res = c.transient(&spec, &InitialState::Uic(ics)).unwrap();
    assert_eq!(
        res.stats.guard_refreshes, 0,
        "no shared line moved, so the guard must never fire: {:?}",
        res.stats
    );
    assert!(
        res.stats.devices_dormant > 0,
        "hold must be served dormant: {:?}",
        res.stats
    );
    // The only refreshes allowed are the initial-settle ones (the UIC hold
    // solve plus the first few steps while nodes relax to the operating
    // point): a storm would scale with step count, not cell count.
    let settle_budget = 20 * n_cells as u64;
    assert!(
        res.stats.cells_refreshed <= settle_budget,
        "refresh storm: {} refreshes for {} cells over {} solves",
        res.stats.cells_refreshed,
        n_cells,
        res.stats.newton_solves
    );
    // Dormancy must dominate: far fewer evaluations than the dense count
    // (5 devices × iterations).
    assert!(
        res.stats.devices_dormant > 4 * res.stats.device_evals,
        "dormant/eval ratio too low: {:?}",
        res.stats
    );
}

#[test]
fn parallel_evaluation_is_bit_identical_across_thread_counts() {
    // Enough cells that full-evaluation assemblies exceed PAR_EVAL_MIN and
    // actually take the threaded path.
    let n_cells = PAR_EVAL_MIN / 5 + 2;
    let bl_wave = Waveform::step(VDD, 0.0, 0.4e-9, 20e-12);
    let spec = TransientSpec::new(1.2e-9, 1e-12);

    let run = |threads: usize| {
        set_assembly_threads(threads);
        let (c, storage) = latch_row(n_cells, bl_wave.clone());
        let ics = with_lines(hold_ics(&storage), &c, VDD);
        let out = c.transient(&spec, &InitialState::Uic(ics)).unwrap();
        set_assembly_threads(0);
        (out, storage)
    };

    let (base, storage) = run(1);
    assert!(
        base.stats.device_evals as usize >= PAR_EVAL_MIN,
        "test must be big enough to exercise the parallel path: {:?}",
        base.stats
    );
    for threads in [4, 8] {
        let (other, _) = run(threads);
        assert_eq!(base.times(), other.times(), "threads = {threads}");
        for &(q, qb) in &storage {
            assert_eq!(base.trace(q), other.trace(q), "threads = {threads}");
            assert_eq!(base.trace(qb), other.trace(qb), "threads = {threads}");
        }
    }
}

#[test]
#[should_panic(expected = "claimed by more than one")]
fn overlapping_partitions_rejected() {
    let (mut c, _) = latch_row(2, Waveform::dc(VDD));
    let p = CellPartition {
        devices: vec![0, 5],
        ..CellPartition::default()
    };
    let q = CellPartition {
        devices: vec![5],
        ..CellPartition::default()
    };
    c.set_latency_partitions(vec![p, q]);
}
