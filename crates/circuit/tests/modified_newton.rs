//! Fault-injection coverage for the sparse modified-Newton escalation
//! ladder (PR-6).
//!
//! The sparse strategy layers three defenses over plain Newton, in order of
//! increasing cost:
//!
//! 1. **Stall guard / consistency check** — a reused factorization that
//!    stops contracting the update, or that no longer solves the freshly
//!    assembled Jacobian, is replaced by a full refactorization at the
//!    current iterate;
//! 2. **Fresh-Jacobian Newton** — the refactorized loop is exactly the
//!    dense algorithm, just factored sparsely;
//! 3. **PR-5 rescue ladder** — step subdivision and anchored g_min
//!    continuation, unchanged, as the last resort.
//!
//! These tests inject a device with a deliberately wrong Jacobian to prove
//! the escalation happens (and terminates at the right rung), and run a
//! healthy circuit to prove the expensive rungs are never touched when the
//! cheap ones suffice.

use std::sync::Arc;

use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, SolverStrategy, TransientSpec, Waveform};
use tfet_devices::model::{Caps, DeviceKind, DeviceModel, Polarity};
use tfet_devices::tfet::NTfet;

/// A linear 1 mS "transistor" that reports its drain/source conductances
/// with the wrong sign — plain Newton diverges on any circuit where its
/// stamp dominates, no matter how the linear system is factored.
#[derive(Debug)]
struct WrongJacobianDev {
    g: f64,
}

impl DeviceModel for WrongJacobianDev {
    fn name(&self) -> &str {
        "wrong-jacobian"
    }
    fn polarity(&self) -> Polarity {
        Polarity::N
    }
    fn kind(&self) -> DeviceKind {
        DeviceKind::Mosfet
    }
    fn ids_per_um(&self, _vg: f64, vd: f64, vs: f64) -> f64 {
        self.g * (vd - vs)
    }
    fn caps_per_um(&self, _vg: f64, _vd: f64, _vs: f64) -> Caps {
        Caps::default()
    }
    fn conductances_per_um(&self, _vg: f64, _vd: f64, _vs: f64) -> (f64, f64, f64) {
        (0.0, -self.g, self.g)
    }
}

/// 1 pF discharging through the wrong-Jacobian device: τ = 1 ns.
fn sabotaged_rc() -> (Circuit, tfet_circuit::NodeId) {
    let mut c = Circuit::new();
    let a = c.node("a");
    c.capacitor(a, Circuit::GND, 1e-12);
    c.transistor(
        "M",
        Arc::new(WrongJacobianDev { g: 1e-3 }),
        a,
        Circuit::GND,
        Circuit::GND,
        1.0,
    );
    (c, a)
}

/// Under the sparse strategy the wrong-Jacobian sabotage must climb the
/// whole ladder: reuse stalls (refactorizations far outnumber Newton
/// solves), the refactorized loop still diverges on the rungs the dense
/// analysis predicts, and the PR-5 rescue ladder ultimately salvages the
/// run — the result is still the physical RC discharge.
#[test]
fn sabotage_escalates_through_refactorization_to_rescue_ladder() {
    let (c, a) = sabotaged_rc();
    // Trace the sabotaged run: the rescue ladder is the one span site a
    // healthy gate run never reaches, so this is where the timeline trace
    // proves it instruments the last rung too.
    tfet_obs::reset();
    tfet_obs::enable();
    tfet_obs::trace::start();
    let res = c
        .transient(
            &TransientSpec::fixed(4e-9, 0.8e-9).with_solver(SolverStrategy::Sparse),
            &InitialState::Uic(vec![(a, 1.0)]),
        )
        .unwrap();
    tfet_obs::trace::stop();
    tfet_obs::disable();
    let trace = tfet_obs::trace::export_value();
    let names: Vec<&str> = trace
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("trace has traceEvents")
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for required in ["transient", "newton", "rescue"] {
        assert!(
            names.contains(&required),
            "span `{required}` missing from sabotage trace: {names:?}"
        );
    }
    let s = &res.stats;
    assert_eq!(s.accepted_steps, 5, "{s:?}");
    // Rung 1: the stall guard fired — far more refactorizations than
    // Newton solves, i.e. reuse was tried and abandoned inside iterations.
    assert!(
        s.jac_refactored > s.newton_solves,
        "stall guard never fired: {s:?}"
    );
    // Rung 3: the rescue ladder was reached and salvaged at least one step.
    assert!(s.rescue_attempts >= 1, "rescue ladder untouched: {s:?}");
    assert!(s.rescued_steps >= 1, "no step was rescued: {s:?}");
    // The rescued run is still the physical RC discharge (τ = 1 ns).
    assert!(res.voltage_at(a, 0.0) > 0.99);
    assert!(res.final_voltage(a) < 0.1, "v = {}", res.final_voltage(a));
    let v_tau = res.voltage_at(a, 1e-9);
    assert!((v_tau - (-1.0f64).exp()).abs() < 0.08, "v(τ) = {v_tau}");
}

/// An unrescuable sabotage must surface `NoConvergence` under the sparse
/// strategy too — escalation terminates, it does not loop.
#[test]
fn sparse_unrescuable_failure_still_errors() {
    let (c, a) = sabotaged_rc();
    let err = c
        .transient(
            &TransientSpec::fixed(8e-9, 4e-9).with_solver(SolverStrategy::Sparse),
            &InitialState::Uic(vec![(a, 1.0)]),
        )
        .unwrap_err();
    assert!(
        matches!(err, tfet_circuit::SimError::NoConvergence { .. }),
        "unexpected error: {err:?}"
    );
}

/// A healthy TFET inverter run never touches the expensive rungs: the
/// rescue ladder stays idle, the factorization is reused for most
/// iterations, and settled devices are served from the bypass cache.
#[test]
fn healthy_run_reuses_factors_and_bypasses_devices_without_escalating() {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let out = c.node("out");
    c.vsource(
        "VIN",
        vin,
        Circuit::GND,
        Waveform::step(0.0, 0.8, 0.5e-9, 1e-12),
    );
    c.resistor(vin, out, 1e6);
    c.capacitor(out, Circuit::GND, 1e-15);
    c.transistor(
        "MN",
        Arc::new(NTfet::nominal()),
        out,
        vin,
        Circuit::GND,
        0.1,
    );
    let res = c
        .transient(
            &TransientSpec::fixed(5e-9, 10e-12).with_solver(SolverStrategy::Sparse),
            &InitialState::DcOp(vec![]),
        )
        .unwrap();
    let s = &res.stats;
    assert_eq!(s.rescue_attempts, 0, "healthy run escalated: {s:?}");
    assert_eq!(s.rescued_steps, 0, "healthy run escalated: {s:?}");
    // Modified Newton pays off: most iterations reuse the factorization…
    assert!(s.jac_reused > 0, "no factor reuse: {s:?}");
    assert!(
        s.jac_refactored * 2 < s.newton_iters,
        "refactorized more than half the iterations: {s:?}"
    );
    // …and the settled tail of the run is served from the bypass cache.
    assert!(s.devices_bypassed > 0, "no device bypass: {s:?}");
    // The physics is the ordinary inverter response: output pulled well
    // below the rail once the input steps high.
    assert!(
        res.final_voltage(out) < 0.4,
        "v = {}",
        res.final_voltage(out)
    );
}
