//! Allocation accounting for the transient hot loop.
//!
//! The reusable-workspace refactor promises that, once buffers are warm, the
//! per-timestep inner loop performs **zero** heap allocations: doubling the
//! number of steps must not change the allocation count at all (the result
//! storage is pre-sized from the step count, and every solver buffer lives
//! in the `NewtonWorkspace`).
//!
//! This lives in an integration test because it installs a counting global
//! allocator, which needs `unsafe` (the library itself forbids it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, NewtonWorkspace, TransientSpec, Waveform};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A driven RC chain — nonlinear-free, but it exercises the full transient
/// loop: companion rebuild, assemble, LU, Newton update, result push.
fn rc_chain() -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let a = c.node("a");
    let b = c.node("b");
    c.vsource(
        "V1",
        vin,
        Circuit::GND,
        Waveform::pulse(0.0, 1.0, 1e-11, 2e-10, 1e-11),
    );
    c.resistor(vin, a, 1e3);
    c.capacitor(a, Circuit::GND, 1e-12);
    c.resistor(a, b, 1e3);
    c.capacitor(b, Circuit::GND, 1e-12);
    c
}

fn run(c: &Circuit, steps: usize, ws: &mut NewtonWorkspace) -> usize {
    let spec = TransientSpec::fixed(steps as f64 * 1e-12, 1e-12);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = c
        .transient_with(&spec, &InitialState::Uic(vec![]), ws)
        .unwrap();
    assert_eq!(result.len(), steps + 1);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn run_adaptive(c: &Circuit, t_stop: f64, ws: &mut NewtonWorkspace) -> usize {
    let spec = TransientSpec::new(t_stop, 1e-12);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    c.transient_with(&spec, &InitialState::Uic(vec![]), ws)
        .unwrap();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn tracing_is_disabled_by_default_and_its_off_path_never_allocates() {
    // The instrumentation contract: tracing is opt-in, and every
    // instrumentation site on the disabled path is one relaxed atomic load —
    // no branch may reach the registry, so no allocation can happen. The
    // transient tests below then prove the instrumented hot loop as a whole
    // stays allocation-free with tracing off.
    assert!(!tfet_obs::enabled(), "tracing must be opt-in");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1024 {
        let _span = tfet_obs::span("hot");
        let _root = tfet_obs::root_span("hot-root");
        tfet_obs::counter("alloc.guard", 1);
        tfet_obs::work("alloc.guard_work", 1);
        tfet_obs::record_u64("alloc.guard_hist", i);
        tfet_obs::record_f64("alloc.guard_dist", i as f64);
        tfet_obs::record_series("alloc.guard_series", &[i as f64]);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled instrumentation sites must not allocate"
    );
}

#[test]
fn transient_inner_loop_allocates_nothing_per_step() {
    let c = rc_chain();
    let mut ws = NewtonWorkspace::new();
    // Warm-up sizes every workspace buffer.
    run(&c, 64, &mut ws);

    let short = run(&c, 200, &mut ws);
    let long = run(&c, 400, &mut ws);
    // With a warm workspace the only allocations left are per-*run* (the
    // returned TransientResult's two pre-sized Vecs and MNA setup), so the
    // count must be independent of the step count.
    assert_eq!(
        long, short,
        "per-step allocations detected: {short} allocs at 200 steps vs {long} at 400"
    );
}

#[test]
fn adaptive_loop_allocates_nothing_per_step() {
    let c = rc_chain();
    let mut ws = NewtonWorkspace::new();
    // Warm-up sizes every workspace buffer, including the adaptive trial
    // and breakpoint buffers.
    run_adaptive(&c, 1e-9, &mut ws);

    let short = run_adaptive(&c, 2e-9, &mut ws);
    let long = run_adaptive(&c, 4e-9, &mut ws);
    // Doubling the simulated horizon multiplies the number of accepted
    // steps but must not change the allocation count: all trial-step
    // scratch lives in the workspace and the waveform store is pre-sized.
    assert_eq!(
        long, short,
        "per-step allocations detected in adaptive path: {short} vs {long}"
    );
}
