.title 8x8 6t array, hierarchical
.subckt cell_6t q qb bl blb wl vdd vss
XMPU_L q qb vdd ptfet W=0.0600
XMPD_L q qb vss ntfet W=0.0600
XMPU_R qb q vdd ptfet W=0.0600
XMPD_R qb q vss ntfet W=0.0600
CQ q 0 1.500000e-16
CQB qb 0 1.500000e-16
XMAL q wl bl ptfet W=0.1000
XMAR qb wl blb ptfet W=0.1000
.ends
C0 q0x0 0 1.500000e-16
C1 qb0x0 0 1.500000e-16
C2 q0x1 0 1.500000e-16
C3 qb0x1 0 1.500000e-16
C4 q0x2 0 1.500000e-16
C5 qb0x2 0 1.500000e-16
C6 q0x3 0 1.500000e-16
C7 qb0x3 0 1.500000e-16
C8 q0x4 0 1.500000e-16
C9 qb0x4 0 1.500000e-16
C10 q0x5 0 1.500000e-16
C11 qb0x5 0 1.500000e-16
C12 q0x6 0 1.500000e-16
C13 qb0x6 0 1.500000e-16
C14 q0x7 0 1.500000e-16
C15 qb0x7 0 1.500000e-16
C16 q1x0 0 1.500000e-16
C17 qb1x0 0 1.500000e-16
C18 q1x1 0 1.500000e-16
C19 qb1x1 0 1.500000e-16
C20 q1x2 0 1.500000e-16
C21 qb1x2 0 1.500000e-16
C22 q1x3 0 1.500000e-16
C23 qb1x3 0 1.500000e-16
C24 q1x4 0 1.500000e-16
C25 qb1x4 0 1.500000e-16
C26 q1x5 0 1.500000e-16
C27 qb1x5 0 1.500000e-16
C28 q1x6 0 1.500000e-16
C29 qb1x6 0 1.500000e-16
C30 q1x7 0 1.500000e-16
C31 qb1x7 0 1.500000e-16
C32 q2x0 0 1.500000e-16
C33 qb2x0 0 1.500000e-16
C34 q2x1 0 1.500000e-16
C35 qb2x1 0 1.500000e-16
C36 q2x2 0 1.500000e-16
C37 qb2x2 0 1.500000e-16
C38 q2x3 0 1.500000e-16
C39 qb2x3 0 1.500000e-16
C40 q2x4 0 1.500000e-16
C41 qb2x4 0 1.500000e-16
C42 q2x5 0 1.500000e-16
C43 qb2x5 0 1.500000e-16
C44 q2x6 0 1.500000e-16
C45 qb2x6 0 1.500000e-16
C46 q2x7 0 1.500000e-16
C47 qb2x7 0 1.500000e-16
C48 q3x0 0 1.500000e-16
C49 qb3x0 0 1.500000e-16
C50 q3x1 0 1.500000e-16
C51 qb3x1 0 1.500000e-16
C52 q3x2 0 1.500000e-16
C53 qb3x2 0 1.500000e-16
C54 q3x3 0 1.500000e-16
C55 qb3x3 0 1.500000e-16
C56 q3x4 0 1.500000e-16
C57 qb3x4 0 1.500000e-16
C58 q3x5 0 1.500000e-16
C59 qb3x5 0 1.500000e-16
C60 q3x6 0 1.500000e-16
C61 qb3x6 0 1.500000e-16
C62 q3x7 0 1.500000e-16
C63 qb3x7 0 1.500000e-16
C64 q4x0 0 1.500000e-16
C65 qb4x0 0 1.500000e-16
C66 q4x1 0 1.500000e-16
C67 qb4x1 0 1.500000e-16
C68 q4x2 0 1.500000e-16
C69 qb4x2 0 1.500000e-16
C70 q4x3 0 1.500000e-16
C71 qb4x3 0 1.500000e-16
C72 q4x4 0 1.500000e-16
C73 qb4x4 0 1.500000e-16
C74 q4x5 0 1.500000e-16
C75 qb4x5 0 1.500000e-16
C76 q4x6 0 1.500000e-16
C77 qb4x6 0 1.500000e-16
C78 q4x7 0 1.500000e-16
C79 qb4x7 0 1.500000e-16
C80 q5x0 0 1.500000e-16
C81 qb5x0 0 1.500000e-16
C82 q5x1 0 1.500000e-16
C83 qb5x1 0 1.500000e-16
C84 q5x2 0 1.500000e-16
C85 qb5x2 0 1.500000e-16
C86 q5x3 0 1.500000e-16
C87 qb5x3 0 1.500000e-16
C88 q5x4 0 1.500000e-16
C89 qb5x4 0 1.500000e-16
C90 q5x5 0 1.500000e-16
C91 qb5x5 0 1.500000e-16
C92 q5x6 0 1.500000e-16
C93 qb5x6 0 1.500000e-16
C94 q5x7 0 1.500000e-16
C95 qb5x7 0 1.500000e-16
C96 q6x0 0 1.500000e-16
C97 qb6x0 0 1.500000e-16
C98 q6x1 0 1.500000e-16
C99 qb6x1 0 1.500000e-16
C100 q6x2 0 1.500000e-16
C101 qb6x2 0 1.500000e-16
C102 q6x3 0 1.500000e-16
C103 qb6x3 0 1.500000e-16
C104 q6x4 0 1.500000e-16
C105 qb6x4 0 1.500000e-16
C106 q6x5 0 1.500000e-16
C107 qb6x5 0 1.500000e-16
C108 q6x6 0 1.500000e-16
C109 qb6x6 0 1.500000e-16
C110 q6x7 0 1.500000e-16
C111 qb6x7 0 1.500000e-16
C112 q7x0 0 1.500000e-16
C113 qb7x0 0 1.500000e-16
C114 q7x1 0 1.500000e-16
C115 qb7x1 0 1.500000e-16
C116 q7x2 0 1.500000e-16
C117 qb7x2 0 1.500000e-16
C118 q7x3 0 1.500000e-16
C119 qb7x3 0 1.500000e-16
C120 q7x4 0 1.500000e-16
C121 qb7x4 0 1.500000e-16
C122 q7x5 0 1.500000e-16
C123 qb7x5 0 1.500000e-16
C124 q7x6 0 1.500000e-16
C125 qb7x6 0 1.500000e-16
C126 q7x7 0 1.500000e-16
C127 qb7x7 0 1.500000e-16
VVDD vdd 0 DC 8.000000e-1
VVSS vss 0 DC 0.000000e0
VWL0 wl0 0 DC 8.000000e-1
VWL1 wl1 0 DC 8.000000e-1
VWL2 wl2 0 DC 8.000000e-1
VWL3 wl3 0 DC 8.000000e-1
VWL4 wl4 0 DC 8.000000e-1
VWL5 wl5 0 DC 8.000000e-1
VWL6 wl6 0 DC 8.000000e-1
VWL7 wl7 0 DC 8.000000e-1
VBL0 bl0 0 DC 8.000000e-1
VBLB0 blb0 0 DC 8.000000e-1
VBL1 bl1 0 DC 8.000000e-1
VBLB1 blb1 0 DC 8.000000e-1
VBL2 bl2 0 DC 8.000000e-1
VBLB2 blb2 0 DC 8.000000e-1
VBL3 bl3 0 DC 8.000000e-1
VBLB3 blb3 0 DC 8.000000e-1
VBL4 bl4 0 DC 8.000000e-1
VBLB4 blb4 0 DC 8.000000e-1
VBL5 bl5 0 DC 8.000000e-1
VBLB5 blb5 0 DC 8.000000e-1
VBL6 bl6 0 DC 8.000000e-1
VBLB6 blb6 0 DC 8.000000e-1
VBL7 bl7 0 DC 8.000000e-1
VBLB7 blb7 0 DC 8.000000e-1
Xr0c0.MPU_L q0x0 qb0x0 vdd ptfet W=0.0600
Xr0c0.MPD_L q0x0 qb0x0 vss ntfet W=0.0600
Xr0c0.MPU_R qb0x0 q0x0 vdd ptfet W=0.0600
Xr0c0.MPD_R qb0x0 q0x0 vss ntfet W=0.0600
Xr0c0.MAL q0x0 wl0 bl0 ptfet W=0.1000
Xr0c0.MAR qb0x0 wl0 blb0 ptfet W=0.1000
Xr0c1.MPU_L q0x1 qb0x1 vdd ptfet W=0.0600
Xr0c1.MPD_L q0x1 qb0x1 vss ntfet W=0.0600
Xr0c1.MPU_R qb0x1 q0x1 vdd ptfet W=0.0600
Xr0c1.MPD_R qb0x1 q0x1 vss ntfet W=0.0600
Xr0c1.MAL q0x1 wl0 bl1 ptfet W=0.1000
Xr0c1.MAR qb0x1 wl0 blb1 ptfet W=0.1000
Xr0c2.MPU_L q0x2 qb0x2 vdd ptfet W=0.0600
Xr0c2.MPD_L q0x2 qb0x2 vss ntfet W=0.0600
Xr0c2.MPU_R qb0x2 q0x2 vdd ptfet W=0.0600
Xr0c2.MPD_R qb0x2 q0x2 vss ntfet W=0.0600
Xr0c2.MAL q0x2 wl0 bl2 ptfet W=0.1000
Xr0c2.MAR qb0x2 wl0 blb2 ptfet W=0.1000
Xr0c3.MPU_L q0x3 qb0x3 vdd ptfet W=0.0600
Xr0c3.MPD_L q0x3 qb0x3 vss ntfet W=0.0600
Xr0c3.MPU_R qb0x3 q0x3 vdd ptfet W=0.0600
Xr0c3.MPD_R qb0x3 q0x3 vss ntfet W=0.0600
Xr0c3.MAL q0x3 wl0 bl3 ptfet W=0.1000
Xr0c3.MAR qb0x3 wl0 blb3 ptfet W=0.1000
Xr0c4.MPU_L q0x4 qb0x4 vdd ptfet W=0.0600
Xr0c4.MPD_L q0x4 qb0x4 vss ntfet W=0.0600
Xr0c4.MPU_R qb0x4 q0x4 vdd ptfet W=0.0600
Xr0c4.MPD_R qb0x4 q0x4 vss ntfet W=0.0600
Xr0c4.MAL q0x4 wl0 bl4 ptfet W=0.1000
Xr0c4.MAR qb0x4 wl0 blb4 ptfet W=0.1000
Xr0c5.MPU_L q0x5 qb0x5 vdd ptfet W=0.0600
Xr0c5.MPD_L q0x5 qb0x5 vss ntfet W=0.0600
Xr0c5.MPU_R qb0x5 q0x5 vdd ptfet W=0.0600
Xr0c5.MPD_R qb0x5 q0x5 vss ntfet W=0.0600
Xr0c5.MAL q0x5 wl0 bl5 ptfet W=0.1000
Xr0c5.MAR qb0x5 wl0 blb5 ptfet W=0.1000
Xr0c6.MPU_L q0x6 qb0x6 vdd ptfet W=0.0600
Xr0c6.MPD_L q0x6 qb0x6 vss ntfet W=0.0600
Xr0c6.MPU_R qb0x6 q0x6 vdd ptfet W=0.0600
Xr0c6.MPD_R qb0x6 q0x6 vss ntfet W=0.0600
Xr0c6.MAL q0x6 wl0 bl6 ptfet W=0.1000
Xr0c6.MAR qb0x6 wl0 blb6 ptfet W=0.1000
Xr0c7.MPU_L q0x7 qb0x7 vdd ptfet W=0.0600
Xr0c7.MPD_L q0x7 qb0x7 vss ntfet W=0.0600
Xr0c7.MPU_R qb0x7 q0x7 vdd ptfet W=0.0600
Xr0c7.MPD_R qb0x7 q0x7 vss ntfet W=0.0600
Xr0c7.MAL q0x7 wl0 bl7 ptfet W=0.1000
Xr0c7.MAR qb0x7 wl0 blb7 ptfet W=0.1000
Xr1c0.MPU_L q1x0 qb1x0 vdd ptfet W=0.0600
Xr1c0.MPD_L q1x0 qb1x0 vss ntfet W=0.0600
Xr1c0.MPU_R qb1x0 q1x0 vdd ptfet W=0.0600
Xr1c0.MPD_R qb1x0 q1x0 vss ntfet W=0.0600
Xr1c0.MAL q1x0 wl1 bl0 ptfet W=0.1000
Xr1c0.MAR qb1x0 wl1 blb0 ptfet W=0.1000
Xr1c1.MPU_L q1x1 qb1x1 vdd ptfet W=0.0600
Xr1c1.MPD_L q1x1 qb1x1 vss ntfet W=0.0600
Xr1c1.MPU_R qb1x1 q1x1 vdd ptfet W=0.0600
Xr1c1.MPD_R qb1x1 q1x1 vss ntfet W=0.0600
Xr1c1.MAL q1x1 wl1 bl1 ptfet W=0.1000
Xr1c1.MAR qb1x1 wl1 blb1 ptfet W=0.1000
Xr1c2.MPU_L q1x2 qb1x2 vdd ptfet W=0.0600
Xr1c2.MPD_L q1x2 qb1x2 vss ntfet W=0.0600
Xr1c2.MPU_R qb1x2 q1x2 vdd ptfet W=0.0600
Xr1c2.MPD_R qb1x2 q1x2 vss ntfet W=0.0600
Xr1c2.MAL q1x2 wl1 bl2 ptfet W=0.1000
Xr1c2.MAR qb1x2 wl1 blb2 ptfet W=0.1000
Xr1c3.MPU_L q1x3 qb1x3 vdd ptfet W=0.0600
Xr1c3.MPD_L q1x3 qb1x3 vss ntfet W=0.0600
Xr1c3.MPU_R qb1x3 q1x3 vdd ptfet W=0.0600
Xr1c3.MPD_R qb1x3 q1x3 vss ntfet W=0.0600
Xr1c3.MAL q1x3 wl1 bl3 ptfet W=0.1000
Xr1c3.MAR qb1x3 wl1 blb3 ptfet W=0.1000
Xr1c4.MPU_L q1x4 qb1x4 vdd ptfet W=0.0600
Xr1c4.MPD_L q1x4 qb1x4 vss ntfet W=0.0600
Xr1c4.MPU_R qb1x4 q1x4 vdd ptfet W=0.0600
Xr1c4.MPD_R qb1x4 q1x4 vss ntfet W=0.0600
Xr1c4.MAL q1x4 wl1 bl4 ptfet W=0.1000
Xr1c4.MAR qb1x4 wl1 blb4 ptfet W=0.1000
Xr1c5.MPU_L q1x5 qb1x5 vdd ptfet W=0.0600
Xr1c5.MPD_L q1x5 qb1x5 vss ntfet W=0.0600
Xr1c5.MPU_R qb1x5 q1x5 vdd ptfet W=0.0600
Xr1c5.MPD_R qb1x5 q1x5 vss ntfet W=0.0600
Xr1c5.MAL q1x5 wl1 bl5 ptfet W=0.1000
Xr1c5.MAR qb1x5 wl1 blb5 ptfet W=0.1000
Xr1c6.MPU_L q1x6 qb1x6 vdd ptfet W=0.0600
Xr1c6.MPD_L q1x6 qb1x6 vss ntfet W=0.0600
Xr1c6.MPU_R qb1x6 q1x6 vdd ptfet W=0.0600
Xr1c6.MPD_R qb1x6 q1x6 vss ntfet W=0.0600
Xr1c6.MAL q1x6 wl1 bl6 ptfet W=0.1000
Xr1c6.MAR qb1x6 wl1 blb6 ptfet W=0.1000
Xr1c7.MPU_L q1x7 qb1x7 vdd ptfet W=0.0600
Xr1c7.MPD_L q1x7 qb1x7 vss ntfet W=0.0600
Xr1c7.MPU_R qb1x7 q1x7 vdd ptfet W=0.0600
Xr1c7.MPD_R qb1x7 q1x7 vss ntfet W=0.0600
Xr1c7.MAL q1x7 wl1 bl7 ptfet W=0.1000
Xr1c7.MAR qb1x7 wl1 blb7 ptfet W=0.1000
Xr2c0.MPU_L q2x0 qb2x0 vdd ptfet W=0.0600
Xr2c0.MPD_L q2x0 qb2x0 vss ntfet W=0.0600
Xr2c0.MPU_R qb2x0 q2x0 vdd ptfet W=0.0600
Xr2c0.MPD_R qb2x0 q2x0 vss ntfet W=0.0600
Xr2c0.MAL q2x0 wl2 bl0 ptfet W=0.1000
Xr2c0.MAR qb2x0 wl2 blb0 ptfet W=0.1000
Xr2c1.MPU_L q2x1 qb2x1 vdd ptfet W=0.0600
Xr2c1.MPD_L q2x1 qb2x1 vss ntfet W=0.0600
Xr2c1.MPU_R qb2x1 q2x1 vdd ptfet W=0.0600
Xr2c1.MPD_R qb2x1 q2x1 vss ntfet W=0.0600
Xr2c1.MAL q2x1 wl2 bl1 ptfet W=0.1000
Xr2c1.MAR qb2x1 wl2 blb1 ptfet W=0.1000
Xr2c2.MPU_L q2x2 qb2x2 vdd ptfet W=0.0600
Xr2c2.MPD_L q2x2 qb2x2 vss ntfet W=0.0600
Xr2c2.MPU_R qb2x2 q2x2 vdd ptfet W=0.0600
Xr2c2.MPD_R qb2x2 q2x2 vss ntfet W=0.0600
Xr2c2.MAL q2x2 wl2 bl2 ptfet W=0.1000
Xr2c2.MAR qb2x2 wl2 blb2 ptfet W=0.1000
Xr2c3.MPU_L q2x3 qb2x3 vdd ptfet W=0.0600
Xr2c3.MPD_L q2x3 qb2x3 vss ntfet W=0.0600
Xr2c3.MPU_R qb2x3 q2x3 vdd ptfet W=0.0600
Xr2c3.MPD_R qb2x3 q2x3 vss ntfet W=0.0600
Xr2c3.MAL q2x3 wl2 bl3 ptfet W=0.1000
Xr2c3.MAR qb2x3 wl2 blb3 ptfet W=0.1000
Xr2c4.MPU_L q2x4 qb2x4 vdd ptfet W=0.0600
Xr2c4.MPD_L q2x4 qb2x4 vss ntfet W=0.0600
Xr2c4.MPU_R qb2x4 q2x4 vdd ptfet W=0.0600
Xr2c4.MPD_R qb2x4 q2x4 vss ntfet W=0.0600
Xr2c4.MAL q2x4 wl2 bl4 ptfet W=0.1000
Xr2c4.MAR qb2x4 wl2 blb4 ptfet W=0.1000
Xr2c5.MPU_L q2x5 qb2x5 vdd ptfet W=0.0600
Xr2c5.MPD_L q2x5 qb2x5 vss ntfet W=0.0600
Xr2c5.MPU_R qb2x5 q2x5 vdd ptfet W=0.0600
Xr2c5.MPD_R qb2x5 q2x5 vss ntfet W=0.0600
Xr2c5.MAL q2x5 wl2 bl5 ptfet W=0.1000
Xr2c5.MAR qb2x5 wl2 blb5 ptfet W=0.1000
Xr2c6.MPU_L q2x6 qb2x6 vdd ptfet W=0.0600
Xr2c6.MPD_L q2x6 qb2x6 vss ntfet W=0.0600
Xr2c6.MPU_R qb2x6 q2x6 vdd ptfet W=0.0600
Xr2c6.MPD_R qb2x6 q2x6 vss ntfet W=0.0600
Xr2c6.MAL q2x6 wl2 bl6 ptfet W=0.1000
Xr2c6.MAR qb2x6 wl2 blb6 ptfet W=0.1000
Xr2c7.MPU_L q2x7 qb2x7 vdd ptfet W=0.0600
Xr2c7.MPD_L q2x7 qb2x7 vss ntfet W=0.0600
Xr2c7.MPU_R qb2x7 q2x7 vdd ptfet W=0.0600
Xr2c7.MPD_R qb2x7 q2x7 vss ntfet W=0.0600
Xr2c7.MAL q2x7 wl2 bl7 ptfet W=0.1000
Xr2c7.MAR qb2x7 wl2 blb7 ptfet W=0.1000
Xr3c0.MPU_L q3x0 qb3x0 vdd ptfet W=0.0600
Xr3c0.MPD_L q3x0 qb3x0 vss ntfet W=0.0600
Xr3c0.MPU_R qb3x0 q3x0 vdd ptfet W=0.0600
Xr3c0.MPD_R qb3x0 q3x0 vss ntfet W=0.0600
Xr3c0.MAL q3x0 wl3 bl0 ptfet W=0.1000
Xr3c0.MAR qb3x0 wl3 blb0 ptfet W=0.1000
Xr3c1.MPU_L q3x1 qb3x1 vdd ptfet W=0.0600
Xr3c1.MPD_L q3x1 qb3x1 vss ntfet W=0.0600
Xr3c1.MPU_R qb3x1 q3x1 vdd ptfet W=0.0600
Xr3c1.MPD_R qb3x1 q3x1 vss ntfet W=0.0600
Xr3c1.MAL q3x1 wl3 bl1 ptfet W=0.1000
Xr3c1.MAR qb3x1 wl3 blb1 ptfet W=0.1000
Xr3c2.MPU_L q3x2 qb3x2 vdd ptfet W=0.0600
Xr3c2.MPD_L q3x2 qb3x2 vss ntfet W=0.0600
Xr3c2.MPU_R qb3x2 q3x2 vdd ptfet W=0.0600
Xr3c2.MPD_R qb3x2 q3x2 vss ntfet W=0.0600
Xr3c2.MAL q3x2 wl3 bl2 ptfet W=0.1000
Xr3c2.MAR qb3x2 wl3 blb2 ptfet W=0.1000
Xr3c3.MPU_L q3x3 qb3x3 vdd ptfet W=0.0600
Xr3c3.MPD_L q3x3 qb3x3 vss ntfet W=0.0600
Xr3c3.MPU_R qb3x3 q3x3 vdd ptfet W=0.0600
Xr3c3.MPD_R qb3x3 q3x3 vss ntfet W=0.0600
Xr3c3.MAL q3x3 wl3 bl3 ptfet W=0.1000
Xr3c3.MAR qb3x3 wl3 blb3 ptfet W=0.1000
Xr3c4.MPU_L q3x4 qb3x4 vdd ptfet W=0.0600
Xr3c4.MPD_L q3x4 qb3x4 vss ntfet W=0.0600
Xr3c4.MPU_R qb3x4 q3x4 vdd ptfet W=0.0600
Xr3c4.MPD_R qb3x4 q3x4 vss ntfet W=0.0600
Xr3c4.MAL q3x4 wl3 bl4 ptfet W=0.1000
Xr3c4.MAR qb3x4 wl3 blb4 ptfet W=0.1000
Xr3c5.MPU_L q3x5 qb3x5 vdd ptfet W=0.0600
Xr3c5.MPD_L q3x5 qb3x5 vss ntfet W=0.0600
Xr3c5.MPU_R qb3x5 q3x5 vdd ptfet W=0.0600
Xr3c5.MPD_R qb3x5 q3x5 vss ntfet W=0.0600
Xr3c5.MAL q3x5 wl3 bl5 ptfet W=0.1000
Xr3c5.MAR qb3x5 wl3 blb5 ptfet W=0.1000
Xr3c6.MPU_L q3x6 qb3x6 vdd ptfet W=0.0600
Xr3c6.MPD_L q3x6 qb3x6 vss ntfet W=0.0600
Xr3c6.MPU_R qb3x6 q3x6 vdd ptfet W=0.0600
Xr3c6.MPD_R qb3x6 q3x6 vss ntfet W=0.0600
Xr3c6.MAL q3x6 wl3 bl6 ptfet W=0.1000
Xr3c6.MAR qb3x6 wl3 blb6 ptfet W=0.1000
Xr3c7.MPU_L q3x7 qb3x7 vdd ptfet W=0.0600
Xr3c7.MPD_L q3x7 qb3x7 vss ntfet W=0.0600
Xr3c7.MPU_R qb3x7 q3x7 vdd ptfet W=0.0600
Xr3c7.MPD_R qb3x7 q3x7 vss ntfet W=0.0600
Xr3c7.MAL q3x7 wl3 bl7 ptfet W=0.1000
Xr3c7.MAR qb3x7 wl3 blb7 ptfet W=0.1000
Xr4c0.MPU_L q4x0 qb4x0 vdd ptfet W=0.0600
Xr4c0.MPD_L q4x0 qb4x0 vss ntfet W=0.0600
Xr4c0.MPU_R qb4x0 q4x0 vdd ptfet W=0.0600
Xr4c0.MPD_R qb4x0 q4x0 vss ntfet W=0.0600
Xr4c0.MAL q4x0 wl4 bl0 ptfet W=0.1000
Xr4c0.MAR qb4x0 wl4 blb0 ptfet W=0.1000
Xr4c1.MPU_L q4x1 qb4x1 vdd ptfet W=0.0600
Xr4c1.MPD_L q4x1 qb4x1 vss ntfet W=0.0600
Xr4c1.MPU_R qb4x1 q4x1 vdd ptfet W=0.0600
Xr4c1.MPD_R qb4x1 q4x1 vss ntfet W=0.0600
Xr4c1.MAL q4x1 wl4 bl1 ptfet W=0.1000
Xr4c1.MAR qb4x1 wl4 blb1 ptfet W=0.1000
Xr4c2.MPU_L q4x2 qb4x2 vdd ptfet W=0.0600
Xr4c2.MPD_L q4x2 qb4x2 vss ntfet W=0.0600
Xr4c2.MPU_R qb4x2 q4x2 vdd ptfet W=0.0600
Xr4c2.MPD_R qb4x2 q4x2 vss ntfet W=0.0600
Xr4c2.MAL q4x2 wl4 bl2 ptfet W=0.1000
Xr4c2.MAR qb4x2 wl4 blb2 ptfet W=0.1000
Xr4c3.MPU_L q4x3 qb4x3 vdd ptfet W=0.0600
Xr4c3.MPD_L q4x3 qb4x3 vss ntfet W=0.0600
Xr4c3.MPU_R qb4x3 q4x3 vdd ptfet W=0.0600
Xr4c3.MPD_R qb4x3 q4x3 vss ntfet W=0.0600
Xr4c3.MAL q4x3 wl4 bl3 ptfet W=0.1000
Xr4c3.MAR qb4x3 wl4 blb3 ptfet W=0.1000
Xr4c4.MPU_L q4x4 qb4x4 vdd ptfet W=0.0600
Xr4c4.MPD_L q4x4 qb4x4 vss ntfet W=0.0600
Xr4c4.MPU_R qb4x4 q4x4 vdd ptfet W=0.0600
Xr4c4.MPD_R qb4x4 q4x4 vss ntfet W=0.0600
Xr4c4.MAL q4x4 wl4 bl4 ptfet W=0.1000
Xr4c4.MAR qb4x4 wl4 blb4 ptfet W=0.1000
Xr4c5.MPU_L q4x5 qb4x5 vdd ptfet W=0.0600
Xr4c5.MPD_L q4x5 qb4x5 vss ntfet W=0.0600
Xr4c5.MPU_R qb4x5 q4x5 vdd ptfet W=0.0600
Xr4c5.MPD_R qb4x5 q4x5 vss ntfet W=0.0600
Xr4c5.MAL q4x5 wl4 bl5 ptfet W=0.1000
Xr4c5.MAR qb4x5 wl4 blb5 ptfet W=0.1000
Xr4c6.MPU_L q4x6 qb4x6 vdd ptfet W=0.0600
Xr4c6.MPD_L q4x6 qb4x6 vss ntfet W=0.0600
Xr4c6.MPU_R qb4x6 q4x6 vdd ptfet W=0.0600
Xr4c6.MPD_R qb4x6 q4x6 vss ntfet W=0.0600
Xr4c6.MAL q4x6 wl4 bl6 ptfet W=0.1000
Xr4c6.MAR qb4x6 wl4 blb6 ptfet W=0.1000
Xr4c7.MPU_L q4x7 qb4x7 vdd ptfet W=0.0600
Xr4c7.MPD_L q4x7 qb4x7 vss ntfet W=0.0600
Xr4c7.MPU_R qb4x7 q4x7 vdd ptfet W=0.0600
Xr4c7.MPD_R qb4x7 q4x7 vss ntfet W=0.0600
Xr4c7.MAL q4x7 wl4 bl7 ptfet W=0.1000
Xr4c7.MAR qb4x7 wl4 blb7 ptfet W=0.1000
Xr5c0.MPU_L q5x0 qb5x0 vdd ptfet W=0.0600
Xr5c0.MPD_L q5x0 qb5x0 vss ntfet W=0.0600
Xr5c0.MPU_R qb5x0 q5x0 vdd ptfet W=0.0600
Xr5c0.MPD_R qb5x0 q5x0 vss ntfet W=0.0600
Xr5c0.MAL q5x0 wl5 bl0 ptfet W=0.1000
Xr5c0.MAR qb5x0 wl5 blb0 ptfet W=0.1000
Xr5c1.MPU_L q5x1 qb5x1 vdd ptfet W=0.0600
Xr5c1.MPD_L q5x1 qb5x1 vss ntfet W=0.0600
Xr5c1.MPU_R qb5x1 q5x1 vdd ptfet W=0.0600
Xr5c1.MPD_R qb5x1 q5x1 vss ntfet W=0.0600
Xr5c1.MAL q5x1 wl5 bl1 ptfet W=0.1000
Xr5c1.MAR qb5x1 wl5 blb1 ptfet W=0.1000
Xr5c2.MPU_L q5x2 qb5x2 vdd ptfet W=0.0600
Xr5c2.MPD_L q5x2 qb5x2 vss ntfet W=0.0600
Xr5c2.MPU_R qb5x2 q5x2 vdd ptfet W=0.0600
Xr5c2.MPD_R qb5x2 q5x2 vss ntfet W=0.0600
Xr5c2.MAL q5x2 wl5 bl2 ptfet W=0.1000
Xr5c2.MAR qb5x2 wl5 blb2 ptfet W=0.1000
Xr5c3.MPU_L q5x3 qb5x3 vdd ptfet W=0.0600
Xr5c3.MPD_L q5x3 qb5x3 vss ntfet W=0.0600
Xr5c3.MPU_R qb5x3 q5x3 vdd ptfet W=0.0600
Xr5c3.MPD_R qb5x3 q5x3 vss ntfet W=0.0600
Xr5c3.MAL q5x3 wl5 bl3 ptfet W=0.1000
Xr5c3.MAR qb5x3 wl5 blb3 ptfet W=0.1000
Xr5c4.MPU_L q5x4 qb5x4 vdd ptfet W=0.0600
Xr5c4.MPD_L q5x4 qb5x4 vss ntfet W=0.0600
Xr5c4.MPU_R qb5x4 q5x4 vdd ptfet W=0.0600
Xr5c4.MPD_R qb5x4 q5x4 vss ntfet W=0.0600
Xr5c4.MAL q5x4 wl5 bl4 ptfet W=0.1000
Xr5c4.MAR qb5x4 wl5 blb4 ptfet W=0.1000
Xr5c5.MPU_L q5x5 qb5x5 vdd ptfet W=0.0600
Xr5c5.MPD_L q5x5 qb5x5 vss ntfet W=0.0600
Xr5c5.MPU_R qb5x5 q5x5 vdd ptfet W=0.0600
Xr5c5.MPD_R qb5x5 q5x5 vss ntfet W=0.0600
Xr5c5.MAL q5x5 wl5 bl5 ptfet W=0.1000
Xr5c5.MAR qb5x5 wl5 blb5 ptfet W=0.1000
Xr5c6.MPU_L q5x6 qb5x6 vdd ptfet W=0.0600
Xr5c6.MPD_L q5x6 qb5x6 vss ntfet W=0.0600
Xr5c6.MPU_R qb5x6 q5x6 vdd ptfet W=0.0600
Xr5c6.MPD_R qb5x6 q5x6 vss ntfet W=0.0600
Xr5c6.MAL q5x6 wl5 bl6 ptfet W=0.1000
Xr5c6.MAR qb5x6 wl5 blb6 ptfet W=0.1000
Xr5c7.MPU_L q5x7 qb5x7 vdd ptfet W=0.0600
Xr5c7.MPD_L q5x7 qb5x7 vss ntfet W=0.0600
Xr5c7.MPU_R qb5x7 q5x7 vdd ptfet W=0.0600
Xr5c7.MPD_R qb5x7 q5x7 vss ntfet W=0.0600
Xr5c7.MAL q5x7 wl5 bl7 ptfet W=0.1000
Xr5c7.MAR qb5x7 wl5 blb7 ptfet W=0.1000
Xr6c0.MPU_L q6x0 qb6x0 vdd ptfet W=0.0600
Xr6c0.MPD_L q6x0 qb6x0 vss ntfet W=0.0600
Xr6c0.MPU_R qb6x0 q6x0 vdd ptfet W=0.0600
Xr6c0.MPD_R qb6x0 q6x0 vss ntfet W=0.0600
Xr6c0.MAL q6x0 wl6 bl0 ptfet W=0.1000
Xr6c0.MAR qb6x0 wl6 blb0 ptfet W=0.1000
Xr6c1.MPU_L q6x1 qb6x1 vdd ptfet W=0.0600
Xr6c1.MPD_L q6x1 qb6x1 vss ntfet W=0.0600
Xr6c1.MPU_R qb6x1 q6x1 vdd ptfet W=0.0600
Xr6c1.MPD_R qb6x1 q6x1 vss ntfet W=0.0600
Xr6c1.MAL q6x1 wl6 bl1 ptfet W=0.1000
Xr6c1.MAR qb6x1 wl6 blb1 ptfet W=0.1000
Xr6c2.MPU_L q6x2 qb6x2 vdd ptfet W=0.0600
Xr6c2.MPD_L q6x2 qb6x2 vss ntfet W=0.0600
Xr6c2.MPU_R qb6x2 q6x2 vdd ptfet W=0.0600
Xr6c2.MPD_R qb6x2 q6x2 vss ntfet W=0.0600
Xr6c2.MAL q6x2 wl6 bl2 ptfet W=0.1000
Xr6c2.MAR qb6x2 wl6 blb2 ptfet W=0.1000
Xr6c3.MPU_L q6x3 qb6x3 vdd ptfet W=0.0600
Xr6c3.MPD_L q6x3 qb6x3 vss ntfet W=0.0600
Xr6c3.MPU_R qb6x3 q6x3 vdd ptfet W=0.0600
Xr6c3.MPD_R qb6x3 q6x3 vss ntfet W=0.0600
Xr6c3.MAL q6x3 wl6 bl3 ptfet W=0.1000
Xr6c3.MAR qb6x3 wl6 blb3 ptfet W=0.1000
Xr6c4.MPU_L q6x4 qb6x4 vdd ptfet W=0.0600
Xr6c4.MPD_L q6x4 qb6x4 vss ntfet W=0.0600
Xr6c4.MPU_R qb6x4 q6x4 vdd ptfet W=0.0600
Xr6c4.MPD_R qb6x4 q6x4 vss ntfet W=0.0600
Xr6c4.MAL q6x4 wl6 bl4 ptfet W=0.1000
Xr6c4.MAR qb6x4 wl6 blb4 ptfet W=0.1000
Xr6c5.MPU_L q6x5 qb6x5 vdd ptfet W=0.0600
Xr6c5.MPD_L q6x5 qb6x5 vss ntfet W=0.0600
Xr6c5.MPU_R qb6x5 q6x5 vdd ptfet W=0.0600
Xr6c5.MPD_R qb6x5 q6x5 vss ntfet W=0.0600
Xr6c5.MAL q6x5 wl6 bl5 ptfet W=0.1000
Xr6c5.MAR qb6x5 wl6 blb5 ptfet W=0.1000
Xr6c6.MPU_L q6x6 qb6x6 vdd ptfet W=0.0600
Xr6c6.MPD_L q6x6 qb6x6 vss ntfet W=0.0600
Xr6c6.MPU_R qb6x6 q6x6 vdd ptfet W=0.0600
Xr6c6.MPD_R qb6x6 q6x6 vss ntfet W=0.0600
Xr6c6.MAL q6x6 wl6 bl6 ptfet W=0.1000
Xr6c6.MAR qb6x6 wl6 blb6 ptfet W=0.1000
Xr6c7.MPU_L q6x7 qb6x7 vdd ptfet W=0.0600
Xr6c7.MPD_L q6x7 qb6x7 vss ntfet W=0.0600
Xr6c7.MPU_R qb6x7 q6x7 vdd ptfet W=0.0600
Xr6c7.MPD_R qb6x7 q6x7 vss ntfet W=0.0600
Xr6c7.MAL q6x7 wl6 bl7 ptfet W=0.1000
Xr6c7.MAR qb6x7 wl6 blb7 ptfet W=0.1000
Xr7c0.MPU_L q7x0 qb7x0 vdd ptfet W=0.0600
Xr7c0.MPD_L q7x0 qb7x0 vss ntfet W=0.0600
Xr7c0.MPU_R qb7x0 q7x0 vdd ptfet W=0.0600
Xr7c0.MPD_R qb7x0 q7x0 vss ntfet W=0.0600
Xr7c0.MAL q7x0 wl7 bl0 ptfet W=0.1000
Xr7c0.MAR qb7x0 wl7 blb0 ptfet W=0.1000
Xr7c1.MPU_L q7x1 qb7x1 vdd ptfet W=0.0600
Xr7c1.MPD_L q7x1 qb7x1 vss ntfet W=0.0600
Xr7c1.MPU_R qb7x1 q7x1 vdd ptfet W=0.0600
Xr7c1.MPD_R qb7x1 q7x1 vss ntfet W=0.0600
Xr7c1.MAL q7x1 wl7 bl1 ptfet W=0.1000
Xr7c1.MAR qb7x1 wl7 blb1 ptfet W=0.1000
Xr7c2.MPU_L q7x2 qb7x2 vdd ptfet W=0.0600
Xr7c2.MPD_L q7x2 qb7x2 vss ntfet W=0.0600
Xr7c2.MPU_R qb7x2 q7x2 vdd ptfet W=0.0600
Xr7c2.MPD_R qb7x2 q7x2 vss ntfet W=0.0600
Xr7c2.MAL q7x2 wl7 bl2 ptfet W=0.1000
Xr7c2.MAR qb7x2 wl7 blb2 ptfet W=0.1000
Xr7c3.MPU_L q7x3 qb7x3 vdd ptfet W=0.0600
Xr7c3.MPD_L q7x3 qb7x3 vss ntfet W=0.0600
Xr7c3.MPU_R qb7x3 q7x3 vdd ptfet W=0.0600
Xr7c3.MPD_R qb7x3 q7x3 vss ntfet W=0.0600
Xr7c3.MAL q7x3 wl7 bl3 ptfet W=0.1000
Xr7c3.MAR qb7x3 wl7 blb3 ptfet W=0.1000
Xr7c4.MPU_L q7x4 qb7x4 vdd ptfet W=0.0600
Xr7c4.MPD_L q7x4 qb7x4 vss ntfet W=0.0600
Xr7c4.MPU_R qb7x4 q7x4 vdd ptfet W=0.0600
Xr7c4.MPD_R qb7x4 q7x4 vss ntfet W=0.0600
Xr7c4.MAL q7x4 wl7 bl4 ptfet W=0.1000
Xr7c4.MAR qb7x4 wl7 blb4 ptfet W=0.1000
Xr7c5.MPU_L q7x5 qb7x5 vdd ptfet W=0.0600
Xr7c5.MPD_L q7x5 qb7x5 vss ntfet W=0.0600
Xr7c5.MPU_R qb7x5 q7x5 vdd ptfet W=0.0600
Xr7c5.MPD_R qb7x5 q7x5 vss ntfet W=0.0600
Xr7c5.MAL q7x5 wl7 bl5 ptfet W=0.1000
Xr7c5.MAR qb7x5 wl7 blb5 ptfet W=0.1000
Xr7c6.MPU_L q7x6 qb7x6 vdd ptfet W=0.0600
Xr7c6.MPD_L q7x6 qb7x6 vss ntfet W=0.0600
Xr7c6.MPU_R qb7x6 q7x6 vdd ptfet W=0.0600
Xr7c6.MPD_R qb7x6 q7x6 vss ntfet W=0.0600
Xr7c6.MAL q7x6 wl7 bl6 ptfet W=0.1000
Xr7c6.MAR qb7x6 wl7 blb6 ptfet W=0.1000
Xr7c7.MPU_L q7x7 qb7x7 vdd ptfet W=0.0600
Xr7c7.MPD_L q7x7 qb7x7 vss ntfet W=0.0600
Xr7c7.MPU_R qb7x7 q7x7 vdd ptfet W=0.0600
Xr7c7.MPD_R qb7x7 q7x7 vss ntfet W=0.0600
Xr7c7.MAL q7x7 wl7 bl7 ptfet W=0.1000
Xr7c7.MAR qb7x7 wl7 blb7 ptfet W=0.1000
.tran 2.000000e-12 1.000000e-9
.end
