.title 8x8 6t array, hierarchical
.subckt cell_6t q qb bl blb wl vdd vss
XMPU_L q qb vdd ptfet W=0.0600
XMPD_L q qb vss ntfet W=0.0600
XMPU_R qb q vdd ptfet W=0.0600
XMPD_R qb q vss ntfet W=0.0600
CQ q 0 1.500000e-16
CQB qb 0 1.500000e-16
XMAL q wl bl ptfet W=0.1000
XMAR qb wl blb ptfet W=0.1000
.ends
VVDD vdd 0 DC 8.000000e-1
VVSS vss 0 DC 0.000000e0
VWL0 wl0 0 DC 8.000000e-1
VWL1 wl1 0 DC 8.000000e-1
VWL2 wl2 0 DC 8.000000e-1
VWL3 wl3 0 DC 8.000000e-1
VWL4 wl4 0 DC 8.000000e-1
VWL5 wl5 0 DC 8.000000e-1
VWL6 wl6 0 DC 8.000000e-1
VWL7 wl7 0 DC 8.000000e-1
VBL0 bl0 0 DC 8.000000e-1
VBLB0 blb0 0 DC 8.000000e-1
VBL1 bl1 0 DC 8.000000e-1
VBLB1 blb1 0 DC 8.000000e-1
VBL2 bl2 0 DC 8.000000e-1
VBLB2 blb2 0 DC 8.000000e-1
VBL3 bl3 0 DC 8.000000e-1
VBLB3 blb3 0 DC 8.000000e-1
VBL4 bl4 0 DC 8.000000e-1
VBLB4 blb4 0 DC 8.000000e-1
VBL5 bl5 0 DC 8.000000e-1
VBLB5 blb5 0 DC 8.000000e-1
VBL6 bl6 0 DC 8.000000e-1
VBLB6 blb6 0 DC 8.000000e-1
VBL7 bl7 0 DC 8.000000e-1
VBLB7 blb7 0 DC 8.000000e-1
Xr0c0 q0x0 qb0x0 bl0 blb0 wl0 vdd vss cell_6t
Xr0c1 q0x1 qb0x1 bl1 blb1 wl0 vdd vss cell_6t
Xr0c2 q0x2 qb0x2 bl2 blb2 wl0 vdd vss cell_6t
Xr0c3 q0x3 qb0x3 bl3 blb3 wl0 vdd vss cell_6t
Xr0c4 q0x4 qb0x4 bl4 blb4 wl0 vdd vss cell_6t
Xr0c5 q0x5 qb0x5 bl5 blb5 wl0 vdd vss cell_6t
Xr0c6 q0x6 qb0x6 bl6 blb6 wl0 vdd vss cell_6t
Xr0c7 q0x7 qb0x7 bl7 blb7 wl0 vdd vss cell_6t
Xr1c0 q1x0 qb1x0 bl0 blb0 wl1 vdd vss cell_6t
Xr1c1 q1x1 qb1x1 bl1 blb1 wl1 vdd vss cell_6t
Xr1c2 q1x2 qb1x2 bl2 blb2 wl1 vdd vss cell_6t
Xr1c3 q1x3 qb1x3 bl3 blb3 wl1 vdd vss cell_6t
Xr1c4 q1x4 qb1x4 bl4 blb4 wl1 vdd vss cell_6t
Xr1c5 q1x5 qb1x5 bl5 blb5 wl1 vdd vss cell_6t
Xr1c6 q1x6 qb1x6 bl6 blb6 wl1 vdd vss cell_6t
Xr1c7 q1x7 qb1x7 bl7 blb7 wl1 vdd vss cell_6t
Xr2c0 q2x0 qb2x0 bl0 blb0 wl2 vdd vss cell_6t
Xr2c1 q2x1 qb2x1 bl1 blb1 wl2 vdd vss cell_6t
Xr2c2 q2x2 qb2x2 bl2 blb2 wl2 vdd vss cell_6t
Xr2c3 q2x3 qb2x3 bl3 blb3 wl2 vdd vss cell_6t
Xr2c4 q2x4 qb2x4 bl4 blb4 wl2 vdd vss cell_6t
Xr2c5 q2x5 qb2x5 bl5 blb5 wl2 vdd vss cell_6t
Xr2c6 q2x6 qb2x6 bl6 blb6 wl2 vdd vss cell_6t
Xr2c7 q2x7 qb2x7 bl7 blb7 wl2 vdd vss cell_6t
Xr3c0 q3x0 qb3x0 bl0 blb0 wl3 vdd vss cell_6t
Xr3c1 q3x1 qb3x1 bl1 blb1 wl3 vdd vss cell_6t
Xr3c2 q3x2 qb3x2 bl2 blb2 wl3 vdd vss cell_6t
Xr3c3 q3x3 qb3x3 bl3 blb3 wl3 vdd vss cell_6t
Xr3c4 q3x4 qb3x4 bl4 blb4 wl3 vdd vss cell_6t
Xr3c5 q3x5 qb3x5 bl5 blb5 wl3 vdd vss cell_6t
Xr3c6 q3x6 qb3x6 bl6 blb6 wl3 vdd vss cell_6t
Xr3c7 q3x7 qb3x7 bl7 blb7 wl3 vdd vss cell_6t
Xr4c0 q4x0 qb4x0 bl0 blb0 wl4 vdd vss cell_6t
Xr4c1 q4x1 qb4x1 bl1 blb1 wl4 vdd vss cell_6t
Xr4c2 q4x2 qb4x2 bl2 blb2 wl4 vdd vss cell_6t
Xr4c3 q4x3 qb4x3 bl3 blb3 wl4 vdd vss cell_6t
Xr4c4 q4x4 qb4x4 bl4 blb4 wl4 vdd vss cell_6t
Xr4c5 q4x5 qb4x5 bl5 blb5 wl4 vdd vss cell_6t
Xr4c6 q4x6 qb4x6 bl6 blb6 wl4 vdd vss cell_6t
Xr4c7 q4x7 qb4x7 bl7 blb7 wl4 vdd vss cell_6t
Xr5c0 q5x0 qb5x0 bl0 blb0 wl5 vdd vss cell_6t
Xr5c1 q5x1 qb5x1 bl1 blb1 wl5 vdd vss cell_6t
Xr5c2 q5x2 qb5x2 bl2 blb2 wl5 vdd vss cell_6t
Xr5c3 q5x3 qb5x3 bl3 blb3 wl5 vdd vss cell_6t
Xr5c4 q5x4 qb5x4 bl4 blb4 wl5 vdd vss cell_6t
Xr5c5 q5x5 qb5x5 bl5 blb5 wl5 vdd vss cell_6t
Xr5c6 q5x6 qb5x6 bl6 blb6 wl5 vdd vss cell_6t
Xr5c7 q5x7 qb5x7 bl7 blb7 wl5 vdd vss cell_6t
Xr6c0 q6x0 qb6x0 bl0 blb0 wl6 vdd vss cell_6t
Xr6c1 q6x1 qb6x1 bl1 blb1 wl6 vdd vss cell_6t
Xr6c2 q6x2 qb6x2 bl2 blb2 wl6 vdd vss cell_6t
Xr6c3 q6x3 qb6x3 bl3 blb3 wl6 vdd vss cell_6t
Xr6c4 q6x4 qb6x4 bl4 blb4 wl6 vdd vss cell_6t
Xr6c5 q6x5 qb6x5 bl5 blb5 wl6 vdd vss cell_6t
Xr6c6 q6x6 qb6x6 bl6 blb6 wl6 vdd vss cell_6t
Xr6c7 q6x7 qb6x7 bl7 blb7 wl6 vdd vss cell_6t
Xr7c0 q7x0 qb7x0 bl0 blb0 wl7 vdd vss cell_6t
Xr7c1 q7x1 qb7x1 bl1 blb1 wl7 vdd vss cell_6t
Xr7c2 q7x2 qb7x2 bl2 blb2 wl7 vdd vss cell_6t
Xr7c3 q7x3 qb7x3 bl3 blb3 wl7 vdd vss cell_6t
Xr7c4 q7x4 qb7x4 bl4 blb4 wl7 vdd vss cell_6t
Xr7c5 q7x5 qb7x5 bl5 blb5 wl7 vdd vss cell_6t
Xr7c6 q7x6 qb7x6 bl6 blb6 wl7 vdd vss cell_6t
Xr7c7 q7x7 qb7x7 bl7 blb7 wl7 vdd vss cell_6t
.tran 2e-12 1e-9
.end
