.title 6t inward-p hold harness: lines at standby, q=1 guess
C0 q 0 1.500000e-16
C1 qb 0 1.500000e-16
VVDD vdd_cell 0 DC 8.000000e-1
VVSS vss_cell 0 DC 0.000000e0
VWL wl 0 DC 8.000000e-1
VBL bl 0 DC 8.000000e-1
VBLB blb 0 DC 8.000000e-1
XMPU_L q qb vdd_cell ptfet W=0.0600
XMPD_L q qb vss_cell ntfet W=0.0600
XMPU_R qb q vdd_cell ptfet W=0.0600
XMPD_R qb q vss_cell ntfet W=0.0600
XMAL q wl bl ptfet W=0.1000
XMAR qb wl blb ptfet W=0.1000
.nodeset v(q)=8.000000e-1
.nodeset v(qb)=0.000000e0
.tran 2.000000e-12 2.000000e-9
.end
