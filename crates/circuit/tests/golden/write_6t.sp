.title 6t inward-p write harness: wl pulse at 2x nominal wl_crit
C0 q 0 1.500000e-16
C1 qb 0 1.500000e-16
VVDD vdd_cell 0 DC 8.000000e-1
VVSS vss_cell 0 DC 0.000000e0
VWL wl 0 PWL(-1.000000e-17 8.000000e-1 2.500000e-10 8.000000e-1 2.600000e-10 0.000000e0 1.101600e-9 0.000000e0 1.111600e-9 8.000000e-1)
VBL bl 0 PWL(-1.000000e-17 8.000000e-1 2.000000e-10 8.000000e-1 2.100000e-10 0.000000e0)
VBLB blb 0 DC 8.000000e-1
XMPU_L q qb vdd_cell ptfet W=0.0600
XMPD_L q qb vss_cell ntfet W=0.0600
XMPU_R qb q vdd_cell ptfet W=0.0600
XMPD_R qb q vss_cell ntfet W=0.0600
XMAL q wl bl ptfet W=0.1000
XMAR qb wl blb ptfet W=0.1000
.ic v(q)=8.000000e-1
.ic v(qb)=0.000000e0
.ic v(bl)=8.000000e-1
.ic v(blb)=8.000000e-1
.ic v(wl)=8.000000e-1
.ic v(vdd_cell)=8.000000e-1
.tran 2.000000e-12 2.631600e-9
.end
