//! Zero-dependency observability substrate for the tfet-sram workspace:
//! hierarchical spans, a metrics registry, machine-readable run reports and
//! failure-forensics bundles.
//!
//! # Design
//!
//! Everything is off by default. The single global [`enable`] flag is read
//! with one relaxed atomic load at every instrumentation site, so with
//! tracing disabled the solver hot paths pay one branch and perform **zero
//! allocations** — the counting-allocator regression in `tfet-circuit` pins
//! this.
//!
//! When enabled, instrumentation aggregates into a process-global registry
//! guarded by a mutex:
//!
//! * **Spans** ([`span`], [`root_span`]) form a per-thread path stack
//!   (`"wl_crit/transient/newton"`); each guard drop bumps the count of its
//!   full path. Counts are order-independent sums, so the span tree in a
//!   report is bit-identical at any worker-thread count.
//! * **Counters** ([`counter`]) are plain `u64` sums keyed by name. The
//!   separate [`work`] class holds counts that depend on *how* a workload
//!   was scheduled (e.g. one compile per Monte-Carlo worker); they are
//!   reported in their own section and excluded from the determinism
//!   contract, like wall-clock timings.
//! * **Histograms** ([`record_u64`]) bucket integer samples by bit length,
//!   and **distributions** ([`record_f64`]) bucket float samples by binary
//!   exponent. Count/min/max/bucket-sums are all commutative, so both are
//!   thread-count invariant.
//! * **Series** ([`record_series`]) store one representative `f64`
//!   trajectory per name (e.g. a bisection bracket trajectory). When the
//!   same name is recorded from several contexts, the lexicographically
//!   smallest trajectory is kept — an arbitrary but *order-independent*
//!   choice, so reports stay deterministic under parallel recording.
//!
//! Wall-clock span timings are a second opt-in ([`set_timings`]) kept in a
//! separate report section, so a default report contains only deterministic
//! artifacts.
//!
//! [`report::RunReport::capture`] snapshots the registry into a versioned,
//! hand-rolled JSON document (this workspace has no serde implementation —
//! the vendored `serde` is marker-traits only) plus a human-readable table.
//! [`forensics`] writes diagnostic bundles for failed solves to
//! `results/diagnostics/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forensics;
pub mod json;
pub mod report;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use json::{ParseError, Value};
pub use report::{RunReport, SCHEMA_VERSION};

/// All opt-in collection switches packed into one atomic, so every
/// instrumentation site's off-path stays exactly **one** relaxed load no
/// matter how many collection tiers exist (metrics, wall-clock timings,
/// timeline trace events).
static STATE: AtomicU8 = AtomicU8::new(0);

/// [`STATE`] bit: metrics registry collection ([`enable`]).
pub(crate) const STATE_METRICS: u8 = 1 << 0;
/// [`STATE`] bit: wall-clock span timings ([`set_timings`]).
pub(crate) const STATE_TIMINGS: u8 = 1 << 1;
/// [`STATE`] bit: timeline trace events ([`trace::start`]).
pub(crate) const STATE_TRACE: u8 = 1 << 2;

#[inline]
pub(crate) fn state() -> u8 {
    STATE.load(Ordering::Relaxed)
}

pub(crate) fn set_state_bit(bit: u8, on: bool) {
    if on {
        STATE.fetch_or(bit, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Whether tracing is currently enabled (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    state() & STATE_METRICS != 0
}

/// Turns tracing on: spans, counters, histograms, series and forensics
/// bundles start collecting. Instrumentation never changes computed values,
/// only records them.
pub fn enable() {
    set_state_bit(STATE_METRICS, true);
}

/// Turns tracing off (the default). Already-collected data is kept until
/// [`reset`].
pub fn disable() {
    set_state_bit(STATE_METRICS, false);
}

/// Opts in (or out of) wall-clock span timings. Timings land in a separate
/// report section ([`report::RunReport::timings_ns`]) so the deterministic
/// sections stay bit-identical run to run.
pub fn set_timings(on: bool) {
    set_state_bit(STATE_TIMINGS, on);
}

/// Whether wall-clock span timings are being collected.
pub fn timings_enabled() -> bool {
    state() & STATE_TIMINGS != 0
}

/// Clears every collected metric and resets the forensics bundle sequence
/// number. Enable flags are left as they are.
pub fn reset() {
    let mut reg = lock_registry();
    reg.spans.clear();
    reg.counters.clear();
    reg.work.clear();
    reg.hists.clear();
    reg.dists.clear();
    reg.series.clear();
    reg.quarantined.clear();
    reg.partitions.clear();
    reg.yields.clear();
    drop(reg);
    forensics::reset_seq();
    trace::clear();
}

// --- Registry ------------------------------------------------------------

/// Power-of-two histogram of `u64` samples: bucket `k` holds samples whose
/// bit length is `k` (i.e. `v == 0` in bucket 0, otherwise
/// `2^(k-1) <= v < 2^k`). All fields are commutative aggregates.
#[derive(Debug, Clone)]
pub(crate) struct Hist {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Hist {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }
}

/// Binary-exponent distribution of finite `f64` samples. Deliberately has
/// no floating-point sum: `f64` addition is not associative, so a sum would
/// depend on recording order and break report determinism.
#[derive(Debug, Clone)]
pub(crate) struct Dist {
    count: u64,
    non_finite: u64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

impl Default for Dist {
    fn default() -> Self {
        Dist {
            count: 0,
            non_finite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }
}

/// Bucket key of a finite sample: `i32::MIN` for exactly zero, otherwise
/// `floor(log2 |v|)`.
pub(crate) fn dist_bucket(v: f64) -> i32 {
    if v == 0.0 {
        i32::MIN
    } else {
        v.abs().log2().floor() as i32
    }
}

impl Dist {
    fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(dist_bucket(v)).or_insert(0) += 1;
    }
}

/// Largest number of points kept per recorded series.
pub const SERIES_CAP: usize = 4096;

/// One named trajectory. Repeated recordings keep the lexicographically
/// smallest trajectory (by `f64::total_cmp`, shorter prefix first) — an
/// order-independent merge, so which recording survives does not depend on
/// thread scheduling.
#[derive(Debug, Clone, Default)]
pub(crate) struct Series {
    recordings: u64,
    values: Vec<f64>,
}

fn series_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

impl Series {
    fn record(&mut self, values: &[f64]) {
        let clipped = &values[..values.len().min(SERIES_CAP)];
        if self.recordings == 0 || series_less(clipped, &self.values) {
            self.values.clear();
            self.values.extend_from_slice(clipped);
        }
        self.recordings += 1;
    }
}

/// One quarantined work item of a degraded study — e.g. a Monte-Carlo
/// sample whose simulation failed and was excluded from the survivor
/// statistics. Studies record these *after* their fan-out completes, in
/// ascending item order from the coordinating thread; captures additionally
/// sort by `(study, index)`, so the report section is bit-identical at any
/// worker-thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The study that quarantined the item (e.g. `"mc_wl_crit"`).
    pub study: &'static str,
    /// Item index within the study (e.g. the Monte-Carlo sample index).
    pub index: u64,
    /// The study's RNG seed, so the item's exact inputs can be replayed.
    pub seed: u64,
    /// Drawn parameters of the item, `(name, value)` in draw order.
    pub params: Vec<(String, f64)>,
    /// Rendered structured error that caused the quarantine.
    pub error: String,
}

/// One rare-event yield study outcome for the report's `yield` section:
/// the importance-sampled tail-probability estimate together with the
/// sampling diagnostics needed to judge it (effective sample size, raw and
/// weighted failure counts, quarantine). Recorded once per study from the
/// coordinating thread; captures sort by `(study, metric, sigma_scale,
/// seed)`, so the section is bit-identical at any worker-thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldStudyRecord {
    /// The study that produced the estimate (e.g. `"yield_write"`).
    pub study: &'static str,
    /// The failure metric (e.g. `"write_margin"`, `"drnm"`).
    pub metric: &'static str,
    /// The study's RNG seed.
    pub seed: u64,
    /// Proposal-widening factor σ′/σ; `1.0` is brute force.
    pub sigma_scale: f64,
    /// Samples attempted.
    pub samples: u64,
    /// Samples that produced a verdict.
    pub survivors: u64,
    /// Raw count of failing survivors (unweighted).
    pub failures: u64,
    /// Samples excluded from the estimate.
    pub quarantined: u64,
    /// Likelihood-ratio-weighted tail failure probability; NaN when no
    /// survivor exists (serialized as `null`).
    pub p_fail: f64,
    /// Standard error of `p_fail`; NaN when undefined.
    pub std_error: f64,
    /// Kish effective sample size of the survivor weights.
    pub ess: f64,
}

/// Key of one partition-telemetry cell: `(study, row, col)`. Studies are
/// static labels (`"array_write"`), coordinates are the cell's grid
/// position.
pub type PartitionKey = (&'static str, u32, u32);

#[derive(Debug, Default)]
pub(crate) struct Registry {
    /// Span path (`"a/b/c"`) -> (count, accumulated ns when timings are on).
    pub(crate) spans: BTreeMap<String, (u64, u128)>,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) work: BTreeMap<&'static str, u64>,
    pub(crate) hists: BTreeMap<&'static str, Hist>,
    pub(crate) dists: BTreeMap<&'static str, Dist>,
    pub(crate) series: BTreeMap<&'static str, Series>,
    pub(crate) quarantined: Vec<QuarantineRecord>,
    /// Per-cell partition telemetry: `(study, row, col)` -> metric sums.
    pub(crate) partitions: BTreeMap<PartitionKey, BTreeMap<&'static str, u64>>,
    pub(crate) yields: Vec<YieldStudyRecord>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    spans: BTreeMap::new(),
    counters: BTreeMap::new(),
    work: BTreeMap::new(),
    hists: BTreeMap::new(),
    dists: BTreeMap::new(),
    series: BTreeMap::new(),
    quarantined: Vec::new(),
    partitions: BTreeMap::new(),
    yields: Vec::new(),
});

pub(crate) fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

// --- Spans ---------------------------------------------------------------

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one open span; dropping it records the span.
///
/// Inert (no thread-local access, no allocation) when tracing was disabled
/// at creation.
#[derive(Debug)]
#[must_use = "a span is recorded when its guard drops"]
pub struct SpanGuard {
    /// Full slash-joined path, `None` when tracing was disabled at entry.
    path: Option<String>,
    /// For root spans: the stack suspended at entry, restored on drop.
    suspended: Option<Vec<&'static str>>,
    start: Option<Instant>,
    /// Span name, kept for the timeline end event when tracing was on at
    /// entry (`None` otherwise).
    traced: Option<&'static str>,
}

fn open_span(name: &'static str, root: bool) -> SpanGuard {
    let state = state();
    if state & (STATE_METRICS | STATE_TRACE) == 0 {
        return SpanGuard {
            path: None,
            suspended: None,
            start: None,
            traced: None,
        };
    }
    let traced = if state & STATE_TRACE != 0 {
        trace::record(name, trace::Phase::Begin);
        Some(name)
    } else {
        None
    };
    if state & STATE_METRICS == 0 {
        // Timeline-only span: no metrics path, no span stack bookkeeping.
        return SpanGuard {
            path: None,
            suspended: None,
            start: None,
            traced,
        };
    }
    let (path, suspended) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let suspended = if root {
            Some(std::mem::take(&mut *stack))
        } else {
            None
        };
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            let mut p = stack.join("/");
            p.push('/');
            p.push_str(name);
            p
        };
        stack.push(name);
        (path, suspended)
    });
    SpanGuard {
        path: Some(path),
        suspended,
        start: (state & STATE_TIMINGS != 0).then(Instant::now),
        traced,
    }
}

/// Opens a span nested under the spans already open on this thread. The
/// guard records `parent/.../name` with a count of 1 when dropped.
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, false)
}

/// Opens a span whose path ignores the spans already open on this thread.
///
/// Work items dispatched to a pool must use this: a worker thread has an
/// empty span stack while the same item run inline (one worker) would
/// inherit the caller's stack, and the two would otherwise record different
/// paths. A root span pins the path to `name` either way, keeping reports
/// identical at any thread count. The suspended stack is restored on drop.
pub fn root_span(name: &'static str) -> SpanGuard {
    open_span(name, true)
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.traced.take() {
            trace::record(name, trace::Phase::End);
        }
        let Some(path) = self.path.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.pop();
            if let Some(suspended) = self.suspended.take() {
                *stack = suspended;
            }
        });
        let ns = self
            .start
            .map(|s| s.elapsed().as_nanos())
            .unwrap_or_default();
        let mut reg = lock_registry();
        let slot = reg.spans.entry(path).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += ns;
    }
}

// --- Metrics -------------------------------------------------------------

/// Adds `n` to the named counter (deterministic report section: callers
/// must only count logical events, never scheduling-dependent ones — those
/// belong in [`work`]).
#[inline]
pub fn counter(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    *lock_registry().counters.entry(name).or_insert(0) += n;
}

/// Adds `n` to the named *work* counter — physical work whose total depends
/// on scheduling (e.g. one circuit compile per pool worker). Reported in a
/// separate section excluded from the thread-count-invariance contract.
#[inline]
pub fn work(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    *lock_registry().work.entry(name).or_insert(0) += n;
}

/// Records one integer sample into the named power-of-two histogram.
#[inline]
pub fn record_u64(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    lock_registry().hists.entry(name).or_default().record(v);
}

/// Records one float sample into the named binary-exponent distribution.
/// Non-finite samples are tallied separately and excluded from min/max.
#[inline]
pub fn record_f64(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    lock_registry().dists.entry(name).or_default().record(v);
}

/// Records a trajectory under `name` (truncated to [`SERIES_CAP`] points).
/// See the series semantics in the module docs: repeated recordings keep an
/// order-independent representative.
#[inline]
pub fn record_series(name: &'static str, values: &[f64]) {
    if !enabled() {
        return;
    }
    lock_registry()
        .series
        .entry(name)
        .or_default()
        .record(values);
}

/// Records one quarantined item into the report's `quarantined` section.
///
/// Callers must record from the study's coordinating thread after the
/// fan-out completes (in index order); captures sort by `(study, index)`
/// regardless, so the section stays deterministic.
#[inline]
pub fn quarantine(record: QuarantineRecord) {
    if !enabled() {
        return;
    }
    lock_registry().quarantined.push(record);
}

/// Records one rare-event yield study outcome into the report's `yield`
/// section.
///
/// Callers must record from the study's coordinating thread after the
/// fan-out completes; captures sort by `(study, metric, sigma_scale, seed)`
/// regardless, so the section stays deterministic.
#[inline]
pub fn yield_study(record: YieldStudyRecord) {
    if !enabled() {
        return;
    }
    lock_registry().yields.push(record);
}

/// Accumulates per-cell partition telemetry under `(study, row, col)` —
/// e.g. one bitcell's dormancy duty cycle and guard-trip attribution after
/// an array operation. Metric values are summed across calls.
///
/// Callers must record logically deterministic values only (the latency
/// tier's dormancy decisions are made serially inside the Newton loop, so
/// its counters qualify); the section then stays bit-identical at any
/// worker-thread count, like `counters`.
#[inline]
pub fn partition_cell(study: &'static str, row: u32, col: u32, metrics: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let mut reg = lock_registry();
    let cell = reg.partitions.entry((study, row, col)).or_default();
    for &(name, v) in metrics {
        *cell.entry(name).or_insert(0) += v;
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the global registry/enable flags.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _guard = test_lock::hold();
        disable();
        reset();
        {
            let _s = span("outer");
            counter("c", 3);
            record_u64("h", 7);
            record_f64("d", 1.5);
            record_series("s", &[1.0, 2.0]);
        }
        let report = RunReport::capture();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.series.is_empty());
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let _guard = test_lock::hold();
        enable();
        reset();
        {
            let _a = span("wl_crit");
            {
                let _b = span("transient");
                let _c = span("newton");
            }
            let _b2 = span("transient");
        }
        disable();
        let report = RunReport::capture();
        assert_eq!(report.spans.get("wl_crit"), Some(&1));
        assert_eq!(report.spans.get("wl_crit/transient"), Some(&2));
        assert_eq!(report.spans.get("wl_crit/transient/newton"), Some(&1));
    }

    #[test]
    fn root_span_ignores_and_restores_the_stack() {
        let _guard = test_lock::hold();
        enable();
        reset();
        {
            let _outer = span("study");
            {
                let _item = root_span("sample");
                let _inner = span("solve");
            }
            // The suspended stack must be back: this nests under "study".
            let _after = span("tail");
        }
        disable();
        let report = RunReport::capture();
        assert_eq!(report.spans.get("sample"), Some(&1));
        assert_eq!(report.spans.get("sample/solve"), Some(&1));
        assert_eq!(report.spans.get("study/tail"), Some(&1));
        assert!(!report.spans.contains_key("study/sample"));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _guard = test_lock::hold();
        enable();
        reset();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            record_u64("h", v);
        }
        disable();
        let report = RunReport::capture();
        let h = &report.histograms["h"];
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.sum, 2057);
        let bucket = |k: u32| h.buckets.iter().find(|b| b.0 == k).map(|b| b.1);
        assert_eq!(bucket(0), Some(1)); // 0
        assert_eq!(bucket(1), Some(1)); // 1
        assert_eq!(bucket(2), Some(2)); // 2, 3
        assert_eq!(bucket(3), Some(1)); // 4
        assert_eq!(bucket(10), Some(1)); // 1023
        assert_eq!(bucket(11), Some(1)); // 1024
    }

    #[test]
    fn distribution_handles_zero_and_non_finite() {
        let _guard = test_lock::hold();
        enable();
        reset();
        for v in [0.0, 1.5, -3.0, f64::INFINITY, f64::NAN] {
            record_f64("d", v);
        }
        disable();
        let report = RunReport::capture();
        let d = &report.distributions["d"];
        assert_eq!(d.count, 3);
        assert_eq!(d.non_finite, 2);
        assert_eq!(d.min, -3.0);
        assert_eq!(d.max, 1.5);
        assert_eq!(dist_bucket(0.0), i32::MIN);
        assert_eq!(dist_bucket(1.5), 0);
        assert_eq!(dist_bucket(-3.0), 1);
    }

    #[test]
    fn series_merge_is_order_independent() {
        let _guard = test_lock::hold();
        enable();

        reset();
        record_series("s", &[2.0, 1.0]);
        record_series("s", &[1.0, 9.0]);
        let forward = RunReport::capture().series["s"].clone();

        reset();
        record_series("s", &[1.0, 9.0]);
        record_series("s", &[2.0, 1.0]);
        let reversed = RunReport::capture().series["s"].clone();
        disable();

        assert_eq!(forward.values, vec![1.0, 9.0]);
        assert_eq!(forward.values, reversed.values);
        assert_eq!(forward.recordings, 2);
        // Prefix ordering: a shorter prefix sorts first.
        assert!(series_less(&[1.0], &[1.0, 0.0]));
        assert!(!series_less(&[1.0, 0.0], &[1.0]));
    }

    #[test]
    fn counters_and_work_are_separate_namespaces() {
        let _guard = test_lock::hold();
        enable();
        reset();
        counter("compiled.runs", 2);
        work("compiled.worker_builds", 5);
        disable();
        let report = RunReport::capture();
        assert_eq!(report.counters.get("compiled.runs"), Some(&2));
        assert_eq!(report.work.get("compiled.worker_builds"), Some(&5));
        assert!(!report.counters.contains_key("compiled.worker_builds"));
    }
}
