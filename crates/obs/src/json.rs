//! Minimal hand-rolled JSON writer.
//!
//! The workspace's vendored `serde` is a marker-traits stand-in with no
//! serializer, so run reports and diagnostic bundles build a [`Value`] tree
//! and stringify it here. Object members keep insertion order (report
//! builders insert from `BTreeMap`s, so emitted documents are key-sorted
//! and byte-stable); floats use `{:e}` formatting, which round-trips and is
//! valid JSON number syntax.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (exact, never exponent-formatted).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values are emitted as `null` (JSON has no
    /// `inf`/`nan` literals).
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; members are written in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: a string value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience: an array of floats.
    pub fn floats(values: &[f64]) -> Value {
        Value::Arr(values.iter().map(|&v| Value::Num(v)).collect())
    }

    /// Serializes this value to a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:e}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers_serialize() {
        let v = Value::Obj(vec![
            ("a".into(), Value::UInt(3)),
            ("b".into(), Value::Num(0.5)),
            ("c".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Int(-2)),
        ]);
        assert_eq!(v.to_json(), r#"{"a":3,"b":5e-1,"c":[true,null],"d":-2}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::text("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_json(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::Num(1e-12).to_json(), "1e-12");
        assert_eq!(Value::floats(&[1.0, 2.5]).to_json(), "[1e0,2.5e0]");
    }
}
