//! Minimal hand-rolled JSON writer and reader.
//!
//! The workspace's vendored `serde` is a marker-traits stand-in with no
//! serializer, so run reports and diagnostic bundles build a [`Value`] tree
//! and stringify it here. Object members keep insertion order (report
//! builders insert from `BTreeMap`s, so emitted documents are key-sorted
//! and byte-stable); floats use `{:e}` formatting, which round-trips and is
//! valid JSON number syntax.
//!
//! [`Value::parse`] is the matching reader: a strict recursive-descent
//! parser for the documents this workspace emits (run reports, diagnostic
//! bundles, bench history entries), used by the `tfet-bench history`
//! regression harness to diff archived cost counters.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (exact, never exponent-formatted).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values are emitted as `null` (JSON has no
    /// `inf`/`nan` literals).
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; members are written in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: a string value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience: an array of floats.
    pub fn floats(values: &[f64]) -> Value {
        Value::Arr(values.iter().map(|&v| Value::Num(v)).collect())
    }

    /// Serializes this value to a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:e}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Value {
    /// Parses a JSON document.
    ///
    /// Strict (no trailing commas or comments); numbers become [`Value::UInt`]
    /// when they are unsigned integers, [`Value::Int`] when negative
    /// integers, and [`Value::Num`] otherwise.
    ///
    /// # Errors
    ///
    /// [`ParseError`] with a byte offset on malformed input.
    pub fn parse(s: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            message: "invalid number".to_string(),
            offset: start,
        })
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers_serialize() {
        let v = Value::Obj(vec![
            ("a".into(), Value::UInt(3)),
            ("b".into(), Value::Num(0.5)),
            ("c".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Int(-2)),
        ]);
        assert_eq!(v.to_json(), r#"{"a":3,"b":5e-1,"c":[true,null],"d":-2}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::text("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_json(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::Num(1e-12).to_json(), "1e-12");
        assert_eq!(Value::floats(&[1.0, 2.5]).to_json(), "[1e0,2.5e0]");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::Obj(vec![
            (
                "counters".into(),
                Value::Obj(vec![
                    ("devices.evals".into(), Value::UInt(101053240)),
                    ("neg".into(), Value::Int(-7)),
                ]),
            ),
            ("values".into(), Value::floats(&[1.0, 0.5, -3e-12])),
            ("label".into(), Value::text("a\"b\\c\nd")),
            (
                "flags".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let json = v.to_json();
        let parsed = Value::parse(&json).expect("writer output parses");
        assert_eq!(parsed, v);
        assert_eq!(parsed.to_json(), json, "parse ∘ to_json is the identity");
    }

    #[test]
    fn parse_accessors_and_numbers() {
        let v = Value::parse(r#" {"a": 12, "b": -4, "c": 2.5e3, "s": "x", "l": [1]} "#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(12));
        assert_eq!(v.get("b").and_then(Value::as_u64), None);
        assert_eq!(v.get("b").and_then(Value::as_f64), Some(-4.0));
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(2500.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("l").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert!(v.as_obj().is_some());
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1}x",
            "\"bad\\q\"",
        ] {
            let err = Value::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            let _ = err.to_string();
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        // Raw multibyte UTF-8 and a \u escape both decode.
        let v = Value::parse("\"A\u{e9}\\u00e9\\t\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}\u{e9}\t"));
    }
}
