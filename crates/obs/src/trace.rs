//! Timeline trace export: opt-in, per-thread ring-buffered span events
//! serialized as Chrome `trace_events` JSON (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! The metrics registry answers *how much* (counts, histograms); a timeline
//! answers *where wall-clock goes* — which spans overlap, which thread ran
//! which Monte-Carlo sample, how long each Newton assembly phase took
//! relative to its factorization. [`start`] flips the trace bit in the
//! shared state atomic, after which every [`span`](crate::span) /
//! [`root_span`](crate::root_span) site records a begin event at entry and
//! an end event at guard drop, stamped with nanoseconds since the process
//! trace epoch and the recording thread's id.
//!
//! # Cost model
//!
//! * **Disabled** (the default): span sites read the one shared state
//!   atomic they already read for metrics — zero extra loads, zero
//!   allocations (the alloc-counter guards in `tfet-circuit` and
//!   `tfet-sram` pin this at single-cell and array scale).
//! * **Enabled**: each event locks the recording thread's own buffer mutex
//!   (uncontended except against a concurrent [`export`]) and writes one
//!   fixed-size record into a bounded ring. When the ring is full the
//!   oldest events are overwritten and counted in
//!   [`Stats::dropped`] — a trace can therefore never grow without bound,
//!   at the cost of losing the oldest history of a very long run.
//!
//! Timestamps are wall-clock and the export is inherently
//! non-deterministic, like the `timings_ns` report section; nothing in a
//! trace feeds back into computed results.

use crate::json::Value;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events (~6 MB per thread at the
/// 24-byte event size). See [`set_capacity`].
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Event phase: span begin or span end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Span entry (`"ph": "B"`).
    Begin,
    /// Span exit (`"ph": "E"`).
    End,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    name: &'static str,
    phase: Phase,
    ts_ns: u64,
}

#[derive(Debug)]
struct ThreadBuf {
    /// Stable small id assigned at registration, in registration order.
    tid: u64,
    /// Ring storage; grows up to the capacity frozen at registration.
    events: Vec<Event>,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Capacity this buffer was registered with.
    cap: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, e: Event) {
        if self.events.len() < self.cap {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in recording order (oldest first).
    fn ordered(&self) -> impl Iterator<Item = &Event> {
        self.events[self.head..]
            .iter()
            .chain(&self.events[..self.head])
    }
}

/// Every registered per-thread buffer, kept alive past thread exit so a
/// trace spanning short-lived scoped-pool workers stays complete.
static BUFFERS: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());
/// Next thread id to hand out.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// Per-thread ring capacity for buffers registered after the last change.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
/// Process trace epoch: set once, on the first [`start`]; all timestamps
/// are nanoseconds since this instant.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<ThreadBuf>>>> = const { RefCell::new(None) };
}

fn lock_buffers() -> std::sync::MutexGuard<'static, Vec<Arc<Mutex<ThreadBuf>>>> {
    BUFFERS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether timeline trace collection is currently on (one relaxed load of
/// the shared state atomic).
#[inline]
pub fn enabled() -> bool {
    crate::state() & crate::STATE_TRACE != 0
}

/// Starts timeline collection: clears previously collected events, pins
/// the process trace epoch (first call only) and flips the trace bit so
/// span sites begin emitting events.
pub fn start() {
    EPOCH.get_or_init(Instant::now);
    clear();
    crate::set_state_bit(crate::STATE_TRACE, true);
}

/// Stops timeline collection. Collected events are kept for [`export`]
/// until [`clear`] (or the next [`start`]).
pub fn stop() {
    crate::set_state_bit(crate::STATE_TRACE, false);
}

/// Sets the per-thread ring capacity, in events. Applies to buffers
/// registered after the call (a thread's capacity is frozen when it records
/// its first event), so set this before [`start`].
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(2), Ordering::Relaxed);
}

/// Discards every collected event (buffers stay registered; live threads
/// keep recording into their cleared rings).
pub fn clear() {
    for buf in lock_buffers().iter() {
        let mut b = buf.lock().unwrap_or_else(|e| e.into_inner());
        b.events.clear();
        b.head = 0;
        b.dropped = 0;
    }
}

/// Records one span event on the calling thread. Callers must have checked
/// [`enabled`] (span sites fold this into their single state load).
pub(crate) fn record(name: &'static str, phase: Phase) {
    let ts_ns = EPOCH
        .get()
        .map(|e| e.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0);
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let arc = local.get_or_insert_with(|| {
            let cap = CAPACITY.load(Ordering::Relaxed);
            let arc = Arc::new(Mutex::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Vec::new(),
                head: 0,
                cap,
                dropped: 0,
            }));
            lock_buffers().push(arc.clone());
            arc
        });
        arc.lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Event { name, phase, ts_ns });
    });
}

/// Summary of the collected timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Events currently held across all thread rings.
    pub events: u64,
    /// Threads that have recorded at least one event since process start.
    pub threads: u64,
    /// Events lost to ring overwrites since the last [`clear`].
    pub dropped: u64,
}

/// Counts the collected events without serializing them.
pub fn stats() -> Stats {
    let mut s = Stats::default();
    for buf in lock_buffers().iter() {
        let b = buf.lock().unwrap_or_else(|e| e.into_inner());
        s.events += b.events.len() as u64;
        s.threads += 1;
        s.dropped += b.dropped;
    }
    s
}

/// The collected timeline as a Chrome `trace_events` [`Value`] tree:
/// `{"traceEvents": [...], "displayTimeUnit": "ns", "otherData": {...}}`.
/// Each span event carries the required `name`/`cat`/`ph`/`ts`/`pid`/`tid`
/// keys with `ts` in microseconds (fractional, nanosecond resolution);
/// per-thread `thread_name` metadata events label the timeline rows.
pub fn export_value() -> Value {
    let buffers = lock_buffers();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut bufs: Vec<std::sync::MutexGuard<'_, ThreadBuf>> = buffers
        .iter()
        .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()))
        .collect();
    bufs.sort_by_key(|b| b.tid);
    for b in &bufs {
        dropped += b.dropped;
        events.push(Value::Obj(vec![
            ("name".into(), Value::text("thread_name")),
            ("ph".into(), Value::text("M")),
            ("pid".into(), Value::UInt(1)),
            ("tid".into(), Value::UInt(b.tid)),
            (
                "args".into(),
                Value::Obj(vec![(
                    "name".into(),
                    Value::text(format!("tfet-{:03}", b.tid)),
                )]),
            ),
        ]));
        for e in b.ordered() {
            events.push(Value::Obj(vec![
                ("name".into(), Value::text(e.name)),
                ("cat".into(), Value::text("span")),
                (
                    "ph".into(),
                    Value::text(match e.phase {
                        Phase::Begin => "B",
                        Phase::End => "E",
                    }),
                ),
                ("ts".into(), Value::Num(e.ts_ns as f64 / 1e3)),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(b.tid)),
            ]));
        }
    }
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(events)),
        ("displayTimeUnit".into(), Value::text("ns")),
        (
            "otherData".into(),
            Value::Obj(vec![
                ("schema".into(), Value::text("tfet-obs.trace")),
                (
                    "version".into(),
                    Value::UInt(u64::from(crate::SCHEMA_VERSION)),
                ),
                ("dropped".into(), Value::UInt(dropped)),
            ]),
        ),
    ])
}

/// [`export_value`] serialized to a JSON string.
pub fn export() -> String {
    export_value().to_json()
}

/// Writes the exported trace to `path` (creating parent directories),
/// returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write(path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, export())?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn span_sites_emit_balanced_begin_end_pairs() {
        let _guard = test_lock::hold();
        crate::disable();
        start();
        {
            let _a = crate::span("outer");
            let _b = crate::span("inner");
        }
        stop();
        let s = stats();
        assert!(s.events >= 4, "expected 2 B + 2 E events, got {s:?}");
        let json = export();
        assert!(json.contains(r#""traceEvents":[{"#));
        assert!(json.contains(r#""name":"outer","cat":"span","ph":"B""#));
        assert!(json.contains(r#""name":"inner","cat":"span","ph":"E""#));
        assert_eq!(
            json.matches(r#""ph":"B""#).count(),
            json.matches(r#""ph":"E""#).count()
        );
        assert!(json.contains(r#""displayTimeUnit":"ns""#));
        clear();
        assert_eq!(stats().events, 0);
    }

    #[test]
    fn trace_works_without_metrics_and_metrics_without_trace() {
        let _guard = test_lock::hold();
        // Trace only: events recorded, metrics registry untouched.
        crate::disable();
        crate::reset();
        start();
        {
            let _s = crate::span("trace_only");
        }
        stop();
        assert!(stats().events >= 2);
        assert!(crate::RunReport::capture().spans.is_empty());

        // Metrics only: span counted, no new events.
        clear();
        crate::enable();
        {
            let _s = crate::span("metrics_only");
        }
        crate::disable();
        assert_eq!(stats().events, 0, "trace off must record nothing");
        assert_eq!(
            crate::RunReport::capture().spans.get("metrics_only"),
            Some(&1)
        );
        crate::reset();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut buf = ThreadBuf {
            tid: 0,
            events: Vec::new(),
            head: 0,
            cap: 4,
            dropped: 0,
        };
        for i in 0..6u64 {
            buf.push(Event {
                name: "e",
                phase: Phase::Begin,
                ts_ns: i,
            });
        }
        assert_eq!(buf.events.len(), 4);
        assert_eq!(buf.dropped, 2);
        let order: Vec<u64> = buf.ordered().map(|e| e.ts_ns).collect();
        assert_eq!(order, vec![2, 3, 4, 5], "oldest events overwritten first");
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let _guard = test_lock::hold();
        crate::disable();
        start();
        for _ in 0..16 {
            let _s = crate::span("tick");
        }
        stop();
        let json = export();
        let mut last = -1.0f64;
        for part in json.split(r#""ts":"#).skip(1) {
            let num: f64 = part
                .split(',')
                .next()
                .unwrap()
                .parse()
                .expect("ts parses as a float");
            assert!(num >= last, "timestamps must be monotonic");
            last = num;
        }
        clear();
    }
}
