//! Versioned run reports: a deterministic snapshot of the metrics registry.
//!
//! [`RunReport::capture`] clones the registry into plain sorted maps;
//! [`RunReport::to_json`] emits the machine-readable document (schema
//! `tfet-obs.run-report`, see `docs/RUN_REPORT.md` at the workspace root)
//! and [`RunReport::render`] the human table behind `--report` flags.
//!
//! Every section except `timings_ns` and `work` is built from commutative
//! aggregates, so a report of the same workload is byte-identical at any
//! worker-thread count.

use crate::json::Value;
use crate::{QuarantineRecord, YieldStudyRecord};
use std::collections::BTreeMap;

/// Version of the `tfet-obs.run-report` (and `tfet-obs.diagnostic`) JSON
/// schema. Bump on any breaking change to the emitted document shape.
///
/// v2 added the `quarantined` section (degraded-study sample quarantine).
/// v3 added the `partitions` section (per-cell array-partition telemetry:
/// dormancy duty cycles, guard-trip attribution, replay counts).
/// v4 added the `yield` section (rare-event yield studies: importance-
/// sampled tail failure probability, standard error, effective sample
/// size).
pub const SCHEMA_VERSION: u32 = 4;

/// Snapshot of one `(study, row, col)` partition-telemetry cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCellSnapshot {
    /// Study label the cell was recorded under (e.g. `"array_write"`).
    pub study: String,
    /// Cell row in the array grid.
    pub row: u32,
    /// Cell column in the array grid.
    pub col: u32,
    /// Metric name -> accumulated value.
    pub metrics: BTreeMap<String, u64>,
}

/// Snapshot of one named `u64` histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u128,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bit_length, count)` pairs for non-empty buckets: bucket `k` holds
    /// samples in `[2^(k-1), 2^k)` (`k = 0` holds exact zeros).
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Snapshot of one named `f64` distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionSnapshot {
    /// Finite samples recorded.
    pub count: u64,
    /// Non-finite samples seen (excluded from everything else).
    pub non_finite: u64,
    /// Smallest finite sample.
    pub min: f64,
    /// Largest finite sample.
    pub max: f64,
    /// `(binary_exponent, count)` pairs; exponent `i32::MIN` holds exact
    /// zeros, otherwise `floor(log2 |v|)`.
    pub buckets: Vec<(i32, u64)>,
}

/// Snapshot of one named series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// How many times the series was recorded.
    pub recordings: u64,
    /// The retained representative trajectory.
    pub values: Vec<f64>,
}

/// A deterministic snapshot of everything the registry collected.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Span path (`"a/b/c"`) -> times entered.
    pub spans: BTreeMap<String, u64>,
    /// Span path -> accumulated wall-clock nanoseconds. Empty unless
    /// [`set_timings`](crate::set_timings) was on; never deterministic.
    pub timings_ns: BTreeMap<String, u128>,
    /// Logical event counters (thread-count invariant).
    pub counters: BTreeMap<String, u64>,
    /// Physical work counters (scheduling-dependent; own section).
    pub work: BTreeMap<String, u64>,
    /// Integer histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Float distributions.
    pub distributions: BTreeMap<String, DistributionSnapshot>,
    /// Representative trajectories.
    pub series: BTreeMap<String, SeriesSnapshot>,
    /// Quarantined study items, sorted by `(study, index)` — deterministic
    /// at any worker-thread count (studies record after their fan-out, and
    /// capture re-sorts regardless).
    pub quarantined: Vec<QuarantineRecord>,
    /// Per-cell array-partition telemetry, sorted by `(study, row, col)`.
    /// Values are logical dormancy-decision counts recorded serially inside
    /// the Newton loop, so the section is thread-count invariant.
    pub partitions: Vec<PartitionCellSnapshot>,
    /// Rare-event yield study outcomes, sorted by `(study, metric,
    /// sigma_scale, seed)`. Estimates are folded in sample order on each
    /// study's coordinating thread, so the section is thread-count
    /// invariant.
    pub yields: Vec<YieldStudyRecord>,
}

impl RunReport {
    /// Snapshots the global registry. Collection may continue afterwards;
    /// the snapshot is unaffected.
    pub fn capture() -> RunReport {
        let reg = crate::lock_registry();
        let mut report = RunReport::default();
        for (path, &(count, ns)) in &reg.spans {
            report.spans.insert(path.clone(), count);
            if ns > 0 {
                report.timings_ns.insert(path.clone(), ns);
            }
        }
        for (&name, &n) in &reg.counters {
            report.counters.insert(name.to_string(), n);
        }
        for (&name, &n) in &reg.work {
            report.work.insert(name.to_string(), n);
        }
        for (&name, h) in &reg.hists {
            report.histograms.insert(
                name.to_string(),
                HistogramSnapshot {
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(k, &c)| (k as u32, c))
                        .collect(),
                },
            );
        }
        for (&name, d) in &reg.dists {
            report.distributions.insert(
                name.to_string(),
                DistributionSnapshot {
                    count: d.count,
                    non_finite: d.non_finite,
                    min: d.min,
                    max: d.max,
                    buckets: d.buckets.iter().map(|(&k, &c)| (k, c)).collect(),
                },
            );
        }
        for (&name, s) in &reg.series {
            report.series.insert(
                name.to_string(),
                SeriesSnapshot {
                    recordings: s.recordings,
                    values: s.values.clone(),
                },
            );
        }
        report.quarantined = reg.quarantined.clone();
        report
            .quarantined
            .sort_by(|a, b| (a.study, a.index).cmp(&(b.study, b.index)));
        // The registry key is already ordered (study, row, col); iteration
        // order of a BTreeMap keeps the section sorted.
        for (&(study, row, col), metrics) in &reg.partitions {
            report.partitions.push(PartitionCellSnapshot {
                study: study.to_string(),
                row,
                col,
                metrics: metrics.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            });
        }
        report.yields = reg.yields.clone();
        report.yields.sort_by(|a, b| {
            (a.study, a.metric)
                .cmp(&(b.study, b.metric))
                .then(a.sigma_scale.total_cmp(&b.sigma_scale))
                .then(a.seed.cmp(&b.seed))
        });
        report
    }

    /// The machine-readable JSON document (schema `tfet-obs.run-report`,
    /// version [`SCHEMA_VERSION`]). Keys are sorted, floats are
    /// exponent-formatted; two captures of identical registry contents are
    /// byte-identical.
    pub fn to_json(&self) -> String {
        let spans = Value::Obj(
            self.spans
                .iter()
                .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                .collect(),
        );
        let timings = Value::Obj(
            self.timings_ns
                .iter()
                .map(|(k, &v)| (k.clone(), Value::UInt(v.min(u128::from(u64::MAX)) as u64)))
                .collect(),
        );
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                .collect(),
        );
        let work = Value::Obj(
            self.work
                .iter()
                .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".into(), Value::UInt(h.count)),
                            (
                                "sum".into(),
                                Value::UInt(h.sum.min(u128::from(u64::MAX)) as u64),
                            ),
                            (
                                "min".into(),
                                Value::UInt(if h.count == 0 { 0 } else { h.min }),
                            ),
                            ("max".into(), Value::UInt(h.max)),
                            (
                                "buckets".into(),
                                Value::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(k, c)| {
                                            Value::Arr(vec![
                                                Value::UInt(u64::from(k)),
                                                Value::UInt(c),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let distributions = Value::Obj(
            self.distributions
                .iter()
                .map(|(k, d)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".into(), Value::UInt(d.count)),
                            ("non_finite".into(), Value::UInt(d.non_finite)),
                            ("min".into(), Value::Num(d.min)),
                            ("max".into(), Value::Num(d.max)),
                            (
                                "buckets".into(),
                                Value::Arr(
                                    d.buckets
                                        .iter()
                                        .map(|&(k, c)| {
                                            Value::Arr(vec![
                                                Value::Int(i64::from(k)),
                                                Value::UInt(c),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let series = Value::Obj(
            self.series
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("recordings".into(), Value::UInt(s.recordings)),
                            ("values".into(), Value::floats(&s.values)),
                        ]),
                    )
                })
                .collect(),
        );
        let quarantined = Value::Arr(
            self.quarantined
                .iter()
                .map(|q| {
                    Value::Obj(vec![
                        ("study".into(), Value::text(q.study)),
                        ("index".into(), Value::UInt(q.index)),
                        ("seed".into(), Value::UInt(q.seed)),
                        (
                            "params".into(),
                            Value::Obj(
                                q.params
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                                    .collect(),
                            ),
                        ),
                        ("error".into(), Value::text(q.error.clone())),
                    ])
                })
                .collect(),
        );
        let partitions = Value::Arr(
            self.partitions
                .iter()
                .map(|p| {
                    Value::Obj(vec![
                        ("study".into(), Value::text(p.study.clone())),
                        ("row".into(), Value::UInt(u64::from(p.row))),
                        ("col".into(), Value::UInt(u64::from(p.col))),
                        (
                            "metrics".into(),
                            Value::Obj(
                                p.metrics
                                    .iter()
                                    .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let yields = Value::Arr(
            self.yields
                .iter()
                .map(|y| {
                    Value::Obj(vec![
                        ("study".into(), Value::text(y.study)),
                        ("metric".into(), Value::text(y.metric)),
                        ("seed".into(), Value::UInt(y.seed)),
                        ("sigma_scale".into(), Value::Num(y.sigma_scale)),
                        ("samples".into(), Value::UInt(y.samples)),
                        ("survivors".into(), Value::UInt(y.survivors)),
                        ("failures".into(), Value::UInt(y.failures)),
                        ("quarantined".into(), Value::UInt(y.quarantined)),
                        // NaN (no-survivor degenerate) serializes as null.
                        ("p_fail".into(), Value::Num(y.p_fail)),
                        ("std_error".into(), Value::Num(y.std_error)),
                        ("ess".into(), Value::Num(y.ess)),
                    ])
                })
                .collect(),
        );
        Value::Obj(vec![
            ("schema".into(), Value::text("tfet-obs.run-report")),
            ("version".into(), Value::UInt(u64::from(SCHEMA_VERSION))),
            ("spans".into(), spans),
            ("counters".into(), counters),
            ("histograms".into(), histograms),
            ("distributions".into(), distributions),
            ("series".into(), series),
            ("quarantined".into(), quarantined),
            ("partitions".into(), partitions),
            ("yield".into(), yields),
            ("work".into(), work),
            ("timings_ns".into(), timings),
        ])
        .to_json()
    }

    /// The partition-telemetry section rendered as a deterministic CSV
    /// heatmap: one `study,row,col,metric,value` line per metric, sorted by
    /// `(study, row, col, metric)` — byte-identical at any worker-thread
    /// count, ready for pivoting into per-metric `(row, col)` heatmaps.
    pub fn partition_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("study,row,col,metric,value\n");
        for p in &self.partitions {
            for (metric, v) in &p.metrics {
                let _ = writeln!(out, "{},{},{},{metric},{v}", p.study, p.row, p.col);
            }
        }
        out
    }

    /// The human-readable table behind `--report` flags.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== run report (tfet-obs schema v{SCHEMA_VERSION}) ==");
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            for (path, count) in &self.spans {
                let _ = write!(out, "  {path:<44} {count:>10}");
                if let Some(ns) = self.timings_ns.get(path) {
                    let _ = write!(out, "  {:>12.3} ms", *ns as f64 / 1e6);
                }
                out.push('\n');
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, n) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {n:>10}");
            }
        }
        if !self.work.is_empty() {
            let _ = writeln!(out, "work (scheduling-dependent):");
            for (name, n) in &self.work {
                let _ = writeln!(out, "  {name:<44} {n:>10}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms (count / min / mean / max):");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<44} {:>10} / {} / {:.2} / {}",
                    h.count,
                    if h.count == 0 { 0 } else { h.min },
                    h.mean(),
                    h.max
                );
            }
        }
        if !self.distributions.is_empty() {
            let _ = writeln!(out, "distributions (count / min / max):");
            for (name, d) in &self.distributions {
                let _ = writeln!(
                    out,
                    "  {name:<44} {:>10} / {:e} / {:e}",
                    d.count, d.min, d.max
                );
            }
        }
        if !self.series.is_empty() {
            let _ = writeln!(out, "series (recordings / points):");
            for (name, s) in &self.series {
                let _ = writeln!(
                    out,
                    "  {name:<44} {:>10} / {}",
                    s.recordings,
                    s.values.len()
                );
            }
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(out, "quarantined (study / index / seed / error):");
            for q in &self.quarantined {
                let _ = writeln!(
                    out,
                    "  {:<28} #{:<6} seed {:<12} {}",
                    q.study, q.index, q.seed, q.error
                );
            }
        }
        if !self.yields.is_empty() {
            let _ = writeln!(out, "yield (study / metric / scale / p_fail ± se / ess):");
            for y in &self.yields {
                let _ = writeln!(
                    out,
                    "  {:<20} {:<14} x{:<5} {:e} ± {:e}  ess {:.1}  ({}/{} fail, {} quarantined)",
                    y.study,
                    y.metric,
                    y.sigma_scale,
                    y.p_fail,
                    y.std_error,
                    y.ess,
                    y.failures,
                    y.survivors,
                    y.quarantined
                );
            }
        }
        if !self.partitions.is_empty() {
            let _ = writeln!(out, "partitions (study / cells / metrics):");
            let mut study_cells: BTreeMap<&str, u64> = BTreeMap::new();
            let mut study_metrics: BTreeMap<&str, usize> = BTreeMap::new();
            for p in &self.partitions {
                *study_cells.entry(&p.study).or_insert(0) += 1;
                let m = study_metrics.entry(&p.study).or_insert(0);
                *m = (*m).max(p.metrics.len());
            }
            for (study, cells) in &study_cells {
                let _ = writeln!(out, "  {study:<44} {cells:>10} / {}", study_metrics[study]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn report_json_is_versioned_and_key_sorted() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        crate::counter("b.second", 2);
        crate::counter("a.first", 1);
        crate::record_u64("newton.iters", 5);
        crate::record_series("bracket", &[1.0, 0.5]);
        crate::disable();

        let report = RunReport::capture();
        let json = report.to_json();
        assert!(json.starts_with(r#"{"schema":"tfet-obs.run-report","version":4"#));
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "counter keys must be sorted");
        assert!(json.contains(r#""newton.iters":{"count":1"#));
        assert!(json.contains(r#""values":[1e0,5e-1]"#));

        let rendered = report.render();
        assert!(rendered.contains("run report"));
        assert!(rendered.contains("a.first"));
        assert!(rendered.contains("newton.iters"));
    }

    #[test]
    fn quarantine_section_is_sorted_and_serialized() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        // Record out of order: capture must sort by (study, index).
        crate::quarantine(QuarantineRecord {
            study: "mc_wl_crit",
            index: 3,
            seed: 42,
            params: vec![("pu_l".into(), 0.01)],
            error: "no convergence".into(),
        });
        crate::quarantine(QuarantineRecord {
            study: "mc_wl_crit",
            index: 1,
            seed: 42,
            params: vec![],
            error: "no convergence".into(),
        });
        crate::disable();
        let report = RunReport::capture();
        assert_eq!(report.quarantined.len(), 2);
        assert_eq!(report.quarantined[0].index, 1);
        assert_eq!(report.quarantined[1].index, 3);
        let json = report.to_json();
        assert!(json.contains(r#""quarantined":[{"study":"mc_wl_crit","index":1,"seed":42"#));
        assert!(json.contains(r#""params":{"pu_l":1e-2}"#));
        let rendered = report.render();
        assert!(rendered.contains("quarantined"));
        assert!(rendered.contains("no convergence"));
    }

    #[test]
    fn capture_of_identical_contents_is_byte_identical() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        crate::counter("x", 1);
        crate::record_f64("d", 0.25);
        crate::disable();
        let a = RunReport::capture().to_json();
        let b = RunReport::capture().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn partition_section_accumulates_sorts_and_serializes() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        // Record out of order and twice for one cell: capture must sort by
        // (study, row, col) and sum repeated metrics.
        crate::partition_cell("array_write", 1, 0, &[("dormant", 5), ("refreshes", 1)]);
        crate::partition_cell("array_write", 0, 2, &[("dormant", 7)]);
        crate::partition_cell("array_write", 1, 0, &[("dormant", 3)]);
        crate::disable();
        let report = RunReport::capture();
        assert_eq!(report.partitions.len(), 2);
        assert_eq!((report.partitions[0].row, report.partitions[0].col), (0, 2));
        assert_eq!(report.partitions[1].metrics["dormant"], 8);
        let json = report.to_json();
        assert!(json.contains(
            r#""partitions":[{"study":"array_write","row":0,"col":2,"metrics":{"dormant":7}}"#
        ));
        let csv = report.partition_csv();
        assert_eq!(
            csv,
            "study,row,col,metric,value\n\
             array_write,0,2,dormant,7\n\
             array_write,1,0,dormant,8\n\
             array_write,1,0,refreshes,1\n"
        );
        assert!(report.render().contains("partitions"));
    }

    #[test]
    fn yield_section_is_sorted_and_serialized() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        // Record out of order: capture must sort by
        // (study, metric, sigma_scale, seed).
        crate::yield_study(YieldStudyRecord {
            study: "yield_write",
            metric: "write_margin",
            seed: 7,
            sigma_scale: 2.5,
            samples: 100,
            survivors: 100,
            failures: 3,
            quarantined: 0,
            p_fail: 1.5e-8,
            std_error: 5e-9,
            ess: 61.2,
        });
        crate::yield_study(YieldStudyRecord {
            study: "yield_write",
            metric: "write_margin",
            seed: 7,
            sigma_scale: 1.0,
            samples: 100,
            survivors: 100,
            failures: 0,
            quarantined: 0,
            p_fail: f64::NAN, // degenerate: serializes as null
            std_error: f64::NAN,
            ess: 100.0,
        });
        crate::disable();
        let report = RunReport::capture();
        assert_eq!(report.yields.len(), 2);
        assert_eq!(report.yields[0].sigma_scale, 1.0);
        assert_eq!(report.yields[1].sigma_scale, 2.5);
        let json = report.to_json();
        assert!(json.contains(r#""yield":[{"study":"yield_write","metric":"write_margin""#));
        assert!(json.contains(r#""p_fail":null"#));
        assert!(json.contains(r#""p_fail":1.5e-8"#));
        assert!(report.render().contains("yield"));
    }

    #[test]
    fn histogram_mean() {
        let h = HistogramSnapshot {
            count: 4,
            sum: 10,
            min: 1,
            max: 4,
            buckets: vec![],
        };
        assert_eq!(h.mean(), 2.5);
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![],
        };
        assert_eq!(empty.mean(), 0.0);
    }
}
