//! Failure forensics: diagnostic bundles for failed solves.
//!
//! When a Newton solve refuses to converge or a transient blows up, the
//! error value alone ("no convergence at t = …") loses everything a
//! post-mortem needs. The solver layers instead assemble a [`Bundle`] —
//! node voltages, residual-norm history, recent step sizes, device
//! operating points — and [`submit`] it here, which writes one JSON file
//! per failure into the diagnostics directory (default
//! `results/diagnostics/`).
//!
//! Submission is gated on the global [`enable`](crate::enable) switch and
//! is best-effort: a bundle that cannot be written (read-only filesystem,
//! missing parent) is dropped silently rather than masking the original
//! solver error. File names are `<label>-<seq>.json` with a monotonically
//! increasing process-wide sequence number, so a serial run produces a
//! deterministic file set.

use crate::json::Value;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Context fields appended to every bundle submitted from this thread,
    /// innermost scope last.
    static CONTEXT: RefCell<Vec<(String, Value)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one forensics context field; dropping it pops the field.
#[derive(Debug)]
#[must_use = "the context field is popped when the guard drops"]
pub struct ContextGuard {
    active: bool,
}

/// Pushes a context field appended to every [`submit`]ted bundle on this
/// thread until the guard drops.
///
/// Higher layers use this to annotate failures with knowledge the solver
/// cannot have: an array operation pushes the addressed cell's
/// `(row, col)` before running its transient, so a convergence failure deep
/// inside the Newton loop emerges with the failing cell's coordinates
/// attached. Inert (no thread-local write) when tracing is disabled at
/// entry, so hot paths pay only the shared state load.
pub fn context(key: impl Into<String>, value: Value) -> ContextGuard {
    if !crate::enabled() {
        return ContextGuard { active: false };
    }
    CONTEXT.with(|ctx| ctx.borrow_mut().push((key.into(), value)));
    ContextGuard { active: true }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.active {
            CONTEXT.with(|ctx| {
                ctx.borrow_mut().pop();
            });
        }
    }
}

/// Default directory diagnostic bundles are written to, relative to the
/// process working directory.
pub const DEFAULT_DIR: &str = "results/diagnostics";

static SEQ: AtomicU64 = AtomicU64::new(0);
static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Overrides the diagnostics directory (tests point this at a scratch
/// directory; `None`-like reset is not needed — set it back explicitly).
pub fn set_dir(path: impl Into<PathBuf>) {
    *DIR.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
}

/// The directory bundles are currently written to.
pub fn dir() -> PathBuf {
    DIR.lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_DIR))
}

/// Resets the bundle sequence number (called by [`reset`](crate::reset)).
pub(crate) fn reset_seq() {
    SEQ.store(0, Ordering::Relaxed);
}

/// One diagnostic bundle: a label plus ordered key/value fields, serialized
/// as a `tfet-obs.diagnostic` JSON document.
#[derive(Debug, Clone)]
pub struct Bundle {
    label: String,
    fields: Vec<(String, Value)>,
}

impl Bundle {
    /// Starts a bundle. The label names the failure site (e.g.
    /// `"transient-newton"`) and becomes the file-name stem.
    pub fn new(label: impl Into<String>) -> Bundle {
        Bundle {
            label: label.into(),
            fields: Vec::new(),
        }
    }

    /// Appends an arbitrary field.
    pub fn field(mut self, key: impl Into<String>, value: Value) -> Bundle {
        self.fields.push((key.into(), value));
        self
    }

    /// Appends a float field.
    pub fn num(self, key: impl Into<String>, v: f64) -> Bundle {
        self.field(key, Value::Num(v))
    }

    /// Appends an integer field.
    pub fn int(self, key: impl Into<String>, v: u64) -> Bundle {
        self.field(key, Value::UInt(v))
    }

    /// Appends a string field.
    pub fn text(self, key: impl Into<String>, s: impl Into<String>) -> Bundle {
        self.field(key, Value::text(s))
    }

    /// Appends a float-array field.
    pub fn floats(self, key: impl Into<String>, values: &[f64]) -> Bundle {
        self.field(key, Value::floats(values))
    }

    /// Appends a `name -> value` map field (insertion order preserved) —
    /// the shape used for node voltages and device operating points.
    pub fn named_nums<S: AsRef<str>>(self, key: impl Into<String>, rows: &[(S, f64)]) -> Bundle {
        self.field(
            key,
            Value::Obj(
                rows.iter()
                    .map(|(name, v)| (name.as_ref().to_string(), Value::Num(*v)))
                    .collect(),
            ),
        )
    }

    /// The bundle's JSON document.
    pub fn to_json(&self) -> String {
        let mut members = vec![
            ("schema".into(), Value::text("tfet-obs.diagnostic")),
            (
                "version".into(),
                Value::UInt(u64::from(crate::SCHEMA_VERSION)),
            ),
            ("label".into(), Value::text(self.label.clone())),
        ];
        members.extend(self.fields.iter().cloned());
        Value::Obj(members).to_json()
    }
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes the bundle to the diagnostics directory if tracing is enabled.
///
/// Returns the path written, or `None` when tracing is disabled or the
/// write failed (best-effort: forensics must never mask the solver error
/// that triggered them). Each submission bumps the
/// `forensics.bundles` counter.
pub fn submit(bundle: &Bundle) -> Option<PathBuf> {
    if !crate::enabled() {
        return None;
    }
    crate::counter("forensics.bundles", 1);
    let dir = dir();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{}-{seq:04}.json", sanitize(&bundle.label)));
    // Append this thread's context fields (innermost last) so the written
    // document carries the higher-layer annotations active at submit time.
    let mut annotated = bundle.clone();
    CONTEXT.with(|ctx| {
        for (k, v) in ctx.borrow().iter() {
            annotated.fields.push((k.clone(), v.clone()));
        }
    });
    write_file(&dir, &path, &annotated.to_json()).then_some(path)
}

fn write_file(dir: &Path, path: &Path, contents: &str) -> bool {
    std::fs::create_dir_all(dir).is_ok() && std::fs::write(path, contents).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tfet-obs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bundle_json_has_schema_and_fields_in_order() {
        let b = Bundle::new("transient-newton")
            .num("time", 1e-9)
            .int("iterations", 200)
            .text("error", "no convergence")
            .floats("residuals", &[1.0, 0.5])
            .named_nums("voltages", &[("q", 0.8), ("qb", 0.0)]);
        let json = b.to_json();
        assert!(json.starts_with(r#"{"schema":"tfet-obs.diagnostic","version":4"#));
        assert!(json.contains(r#""label":"transient-newton""#));
        assert!(json.contains(r#""residuals":[1e0,5e-1]"#));
        assert!(json.contains(r#""voltages":{"q":8e-1,"qb":0e0}"#));
        let t = json.find(r#""time""#).unwrap();
        let i = json.find(r#""iterations""#).unwrap();
        assert!(t < i, "fields keep insertion order");
    }

    #[test]
    fn submit_writes_only_when_enabled() {
        let _guard = test_lock::hold();
        let dir = scratch_dir("submit");
        set_dir(&dir);
        crate::disable();
        crate::reset();

        let bundle = Bundle::new("dc fail!").num("time", 0.0);
        assert_eq!(submit(&bundle), None, "disabled tracing writes nothing");
        assert!(!dir.exists());

        crate::enable();
        let path = submit(&bundle).expect("enabled tracing writes a bundle");
        crate::disable();
        assert!(path.ends_with("dc_fail_-0000.json"), "{path:?}");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("tfet-obs.diagnostic"));
        assert_eq!(
            crate::RunReport::capture()
                .counters
                .get("forensics.bundles"),
            Some(&1)
        );
        let _ = std::fs::remove_dir_all(&dir);
        set_dir(DEFAULT_DIR);
    }

    #[test]
    fn context_fields_annotate_submitted_bundles() {
        let _guard = test_lock::hold();
        let dir = scratch_dir("context");
        set_dir(&dir);
        crate::enable();
        crate::reset();

        let path = {
            let _op = super::context(
                "array",
                Value::Obj(vec![
                    ("row".into(), Value::UInt(3)),
                    ("col".into(), Value::UInt(5)),
                ]),
            );
            submit(&Bundle::new("transient").num("time", 1e-9)).expect("bundle written")
        };
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.contains(r#""array":{"row":3,"col":5}"#),
            "{contents}"
        );

        // The guard popped the context: a later bundle is clean.
        let path2 = submit(&Bundle::new("transient")).unwrap();
        let contents2 = std::fs::read_to_string(&path2).unwrap();
        assert!(!contents2.contains("array"), "{contents2}");

        crate::disable();
        // Disabled tracing: context guards are inert.
        let inert = super::context("x", Value::Null);
        drop(inert);

        let _ = std::fs::remove_dir_all(&dir);
        set_dir(DEFAULT_DIR);
    }
}
