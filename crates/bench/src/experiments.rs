//! The per-figure experiment generators.
//!
//! Each `figNN` function recomputes one figure's data series through the
//! full stack and returns it as a [`Table`]. Figure numbers follow the
//! paper; "T1"/"T2" are the §5 prose comparisons (static power, area)
//! rendered as tables.

use crate::{mv, ps, sci, Table};
use tfet_devices::calibration::characterize;
use tfet_devices::model::DeviceModel;
use tfet_devices::{NTfet, PTfet};
use tfet_numerics::{linspace, par_map, Histogram, Summary};
use tfet_sram::area::area_of;
use tfet_sram::compare::Design;
use tfet_sram::explore::{beta_sweep, corner_score, ra_tradeoff, wa_tradeoff};
use tfet_sram::metrics::{read_metrics, static_power, wl_crit, write_delay, WlCrit};
use tfet_sram::montecarlo::{mc_drnm, mc_wl_crit};
use tfet_sram::prelude::*;
use tfet_sram::rare_event::{yield_read, VariationModel, YieldConfig};

/// Simulation settings shared by all experiments: 2 ps step and 8 ps pulse
/// tolerance keep the full suite minutes-scale while staying well inside
/// each metric's convergence plateau (see the integrator ablation bench).
pub fn fast(params: CellParams) -> CellParams {
    let mut p = params;
    p.sim.dt = 2e-12;
    p.sim.pulse_tol = 8e-12;
    p
}

/// The proposed cell at a given β.
fn inp_cell(beta: f64) -> CellParams {
    fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta))
}

fn wl_cell(w: WlCrit) -> String {
    match w {
        WlCrit::Finite(t) => ps(t),
        WlCrit::Infinite => "inf".to_string(),
        WlCrit::Unbracketable => "unbracketable".to_string(),
    }
}

fn opt_ps(t: Option<f64>) -> String {
    t.map(ps).unwrap_or_else(|| "-".to_string())
}

/// Fig. 2(a): forward transfer characteristics of the n- and p-TFET at
/// |V_DS| = 1 V, plus the headline figures of merit.
pub fn fig02a() -> Table {
    let mut t = Table::new(
        "Fig. 2(a)",
        "TFET forward I_DS–V_GS at |V_DS| = 1 V",
        &["vgs_V", "ntfet_A_per_um", "ptfet_A_per_um"],
    );
    let n = NTfet::nominal();
    let p = PTfet::nominal();
    for vgs in linspace(0.0, 1.0, 21) {
        t.push_row(vec![
            format!("{vgs:.2}"),
            sci(n.ids_per_um(vgs, 1.0, 0.0)),
            sci(p.ids_per_um(-vgs, -1.0, 0.0).abs()),
        ]);
    }
    let f = characterize(&n, 1.0);
    t.note(format!(
        "I_on = {:.2e} A/um (paper 1e-4), I_off = {:.2e} A/um (paper 1e-17), min SS = {:.1} mV/dec (paper < 60)",
        f.i_on,
        f.i_off,
        f.ss_min * 1e3
    ));
    t
}

/// Fig. 2(b): n-TFET reverse-bias transfer curves — gate control at small
/// |V_DS|, gate-independent diode conduction at large |V_DS|.
pub fn fig02b() -> Table {
    let vds_list = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut header = vec!["vgs_V".to_string()];
    header.extend(vds_list.iter().map(|v| format!("I_at_vds_-{v}_A_per_um")));
    let mut t = Table::new(
        "Fig. 2(b)",
        "nTFET reverse-bias I_DS–V_GS (drain and source switched)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let n = NTfet::nominal();
    for vgs in linspace(0.0, 1.0, 11) {
        let mut row = vec![format!("{vgs:.1}")];
        for &vds in &vds_list {
            row.push(sci(-n.ids_per_um(vgs, -vds, 0.0)));
        }
        t.push_row(row);
    }
    let mod_low = -n.ids_per_um(1.0, -0.2, 0.0) / -n.ids_per_um(0.0, -0.2, 0.0);
    let mod_high = -n.ids_per_um(1.0, -1.0, 0.0) / -n.ids_per_um(0.0, -1.0, 0.0);
    t.note(format!(
        "gate modulation: {mod_low:.1e}x at |V_DS| = 0.2 V (gate controls), {mod_high:.2}x at 1.0 V (gate control lost)"
    ));
    t
}

/// Fig. 4: DRNM and WL_crit vs cell ratio β for inward-n / inward-p TFET
/// access and the CMOS baseline.
pub fn fig04(betas: &[f64]) -> Table {
    let mut t = Table::new(
        "Fig. 4",
        "DRNM and WL_crit vs cell ratio (inward-n, inward-p, CMOS)",
        &[
            "beta",
            "drnm_inp_mV",
            "wlcrit_inp_ps",
            "drnm_inn_mV",
            "wlcrit_inn_ps",
            "drnm_cmos_mV",
            "wlcrit_cmos_ps",
        ],
    );
    let inp = beta_sweep(&fast(CellParams::tfet6t(AccessConfig::InwardP)), betas)
        .expect("inward-p sweep");
    let inn = beta_sweep(&fast(CellParams::tfet6t(AccessConfig::InwardN)), betas)
        .expect("inward-n sweep");
    let cmos = beta_sweep(&fast(CellParams::cmos6t()), betas).expect("CMOS sweep");
    for ((a, b), c) in inp.iter().zip(&inn).zip(&cmos) {
        t.push_row(vec![
            format!("{:.2}", a.beta),
            mv(a.drnm),
            wl_cell(a.wl_crit),
            mv(b.drnm),
            wl_cell(b.wl_crit),
            mv(c.drnm),
            wl_cell(c.wl_crit),
        ]);
    }
    let inn_all_inf = inn.iter().all(|p| p.wl_crit.is_infinite());
    t.note(format!(
        "inward-n WL_crit infinite at every beta: {inn_all_inf} (paper: true)"
    ));
    let boundary = inp
        .iter()
        .filter(|p| !p.wl_crit.is_infinite())
        .map(|p| p.beta)
        .fold(f64::NEG_INFINITY, f64::max);
    t.note(format!(
        "largest writable beta for inward-p: {boundary} (paper: ~1)"
    ));
    t
}

/// Fig. 6(e): WL_crit vs β for the four write-assist techniques.
pub fn fig06(betas: &[f64]) -> Table {
    let mut t = Table::new(
        "Fig. 6(e)",
        "WL_crit vs beta under each write-assist technique (30% VDD)",
        &[
            "beta",
            "vdd_lower_ps",
            "gnd_raise_ps",
            "wl_lower_ps",
            "bl_raise_ps",
        ],
    );
    // VDD lowering acts through slow reverse conduction in a unidirectional
    // cell; give the search a larger pulse budget.
    let mut base = inp_cell(1.0);
    base.sim.max_pulse = 12e-9;
    let mut cols = Vec::new();
    for wa in [
        WriteAssist::VddLowering,
        WriteAssist::GndRaising,
        WriteAssist::WordlineLowering,
        WriteAssist::BitlineRaising,
    ] {
        let sweep = tfet_sram::explore::write_assist_sweep(&base, wa, betas).expect("WA sweep");
        cols.push(sweep);
    }
    for (k, &beta) in betas.iter().enumerate() {
        t.push_row(vec![
            format!("{beta:.2}"),
            wl_cell(cols[0][k].wl_crit),
            wl_cell(cols[1][k].wl_crit),
            wl_cell(cols[2][k].wl_crit),
            wl_cell(cols[3][k].wl_crit),
        ]);
    }
    t.note("paper shape: access-side assists (WL lower / BL raise) win at low beta");
    t.note("deviation: in our model VDD lowering (not WL lower/BL raise) is the technique that dies first as beta grows — see EXPERIMENTS.md");
    t
}

/// Fig. 7(e): DRNM vs β for the four read-assist techniques.
pub fn fig07(betas: &[f64]) -> Table {
    let mut t = Table::new(
        "Fig. 7(e)",
        "DRNM vs beta under each read-assist technique (30% VDD)",
        &[
            "beta",
            "vdd_raise_mV",
            "gnd_lower_mV",
            "wl_raise_mV",
            "bl_lower_mV",
            "none_mV",
        ],
    );
    let base = inp_cell(1.0);
    let assists = [
        Some(ReadAssist::VddRaising),
        Some(ReadAssist::GndLowering),
        Some(ReadAssist::WordlineRaising),
        Some(ReadAssist::BitlineLowering),
        None,
    ];
    // One grid point per (β, assist) pair, fanned out together.
    let grid = par_map(betas.len() * assists.len(), None, |i| {
        let p = base.clone().with_beta(betas[i / assists.len()]);
        mv(read_metrics(&p, assists[i % assists.len()])
            .expect("read")
            .drnm)
    });
    for (k, &beta) in betas.iter().enumerate() {
        let mut row = vec![format!("{beta:.2}")];
        row.extend_from_slice(&grid[k * assists.len()..(k + 1) * assists.len()]);
        t.push_row(row);
    }
    t.note("paper shape: rail assists (VDD raise / GND lower) best at large beta");
    t
}

/// Fig. 8: the WA/RA tradeoff plane — (DRNM, WL_crit) per technique per β.
pub fn fig08(wa_betas: &[f64], ra_betas: &[f64]) -> Table {
    let mut t = Table::new(
        "Fig. 8",
        "WA/RA comparison in the (DRNM, WL_crit) plane",
        &["technique", "beta", "drnm_mV", "wlcrit_ps", "corner_score"],
    );
    let mut base = inp_cell(1.0);
    base.sim.max_pulse = 12e-9;
    let (wl_scale, drnm_scale) = (1e-9, 0.1);
    let mut best: Option<(String, f64)> = None;
    let mut curves = Vec::new();
    for wa in WriteAssist::ALL {
        curves.push((
            wa_tradeoff(&base, wa, wa_betas).expect("WA curve"),
            wa_betas.to_vec(),
        ));
    }
    for ra in ReadAssist::ALL {
        curves.push((
            ra_tradeoff(&base, ra, ra_betas).expect("RA curve"),
            ra_betas.to_vec(),
        ));
    }
    for (curve, betas) in &curves {
        let score = corner_score(curve, wl_scale, drnm_scale);
        for (k, &(drnm, wl)) in curve.points.iter().enumerate() {
            t.push_row(vec![
                curve.label.clone(),
                format!("{:.2}", betas.get(k).copied().unwrap_or(f64::NAN)),
                mv(drnm),
                ps(wl),
                score.map(|s| format!("{s:+.3}")).unwrap_or_default(),
            ]);
        }
        if let Some(s) = score {
            if best.as_ref().is_none_or(|(_, b)| s < *b) {
                best = Some((curve.label.clone(), s));
            }
        }
    }
    if let Some((label, _)) = best {
        t.note(format!(
            "best technique (closest to lower-right corner): {label} (paper: GND lowering RA)"
        ));
    }
    t
}

/// Fig. 9: Monte-Carlo WL_crit distributions under each WA at β = 2, plus
/// the DRNM distribution of the WA-sized cell.
pub fn fig09(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Fig. 9",
        "process variation (±5% t_ox) with WA sizing (beta = 2)",
        &["panel", "technique", "mean", "std", "cv_pct", "fail_pct"],
    );
    let mut base = inp_cell(2.0);
    base.sim.max_pulse = 12e-9;
    for wa in WriteAssist::ALL {
        let mc = mc_wl_crit(&base, Some(wa), n, seed).expect("MC WL_crit");
        let fail = mc.failure_rate() * 100.0;
        if mc.values.is_empty() {
            t.push_row(vec![
                "WL_crit".into(),
                wa.label().into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{fail:.0}"),
            ]);
        } else {
            let s = Summary::of(&mc.values);
            t.push_row(vec![
                "WL_crit".into(),
                wa.label().into(),
                format!("{} ps", ps(s.mean)),
                format!("{} ps", ps(s.std_dev)),
                format!("{:.1}", s.cv() * 100.0),
                format!("{fail:.0}"),
            ]);
        }
    }
    // Fig. 9(d): DRNM of the WA-sized cell is hardly influenced.
    let drnm = mc_drnm(&base, None, n, seed).expect("MC DRNM");
    let s = Summary::of(&drnm.values);
    t.push_row(vec![
        "DRNM".into(),
        "(no assist)".into(),
        format!("{} mV", mv(s.mean)),
        format!("{} mV", mv(s.std_dev)),
        format!("{:.1}", s.cv() * 100.0),
        "0".into(),
    ]);
    t.note("paper shape: WL_crit varies greatly under WA; DRNM hardly moves");
    t
}

/// Fig. 10: Monte-Carlo DRNM distributions under each RA at β = 0.6, plus
/// the WL_crit distribution of the RA-sized cell, with histogram rows.
pub fn fig10(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Fig. 10",
        "process variation (±5% t_ox) with RA sizing (beta = 0.6)",
        &["panel", "technique", "mean", "std", "cv_pct"],
    );
    let base = inp_cell(0.6);
    for ra in ReadAssist::ALL {
        let drnm = mc_drnm(&base, Some(ra), n, seed).expect("MC DRNM");
        let s = Summary::of(&drnm.values);
        t.push_row(vec![
            "DRNM".into(),
            ra.label().into(),
            format!("{} mV", mv(s.mean)),
            format!("{} mV", mv(s.std_dev)),
            format!("{:.1}", s.cv() * 100.0),
        ]);
    }
    let mc = mc_wl_crit(&base, None, n, seed).expect("MC WL_crit");
    let s = Summary::of(&mc.values);
    t.push_row(vec![
        "WL_crit".into(),
        "(no assist)".into(),
        format!("{} ps", ps(s.mean)),
        format!("{} ps", ps(s.std_dev)),
        format!("{:.1}", s.cv() * 100.0),
    ]);
    t.note("paper shape: DRNM minimally impacted for all RA; WL_crit spread much smaller than in the WA case");
    // Attach a text histogram of the winning technique for visual parity
    // with the paper's panels.
    let gnd = mc_drnm(&base, Some(ReadAssist::GndLowering), n, seed).expect("MC DRNM");
    let gnd = gnd.values;
    if gnd.iter().any(|&v| v != gnd[0]) {
        let h = Histogram::from_data(&gnd, 8);
        for (center, count) in h.to_rows() {
            t.note(format!(
                "gnd-lowering DRNM hist: {:.1} mV -> {count}",
                center * 1e3
            ));
        }
    }
    t
}

/// Figs. 11–12 shared engine: scorecards of the four §5 designs across V_DD.
/// The supply × design grid is one parallel fan-out; rows come back in
/// supply-major order regardless of the thread count.
fn scorecards(vdds: &[f64]) -> Vec<(Design, f64, ScoreLite)> {
    let designs = Design::ALL;
    par_map(vdds.len() * designs.len(), None, |i| {
        let (d, vdd) = (designs[i % designs.len()], vdds[i / designs.len()]);
        let params = fast(d.params(vdd));
        let read = read_metrics(&params, d.read_assist()).expect("read");
        let wl = match wl_crit(&params, None) {
            Ok(w) => Some(w),
            Err(SramError::Undefined { .. }) => None,
            Err(e) => panic!("{e}"),
        };
        (
            d,
            vdd,
            ScoreLite {
                write_delay: write_delay(&params, None).expect("write delay"),
                read_delay: read.read_delay,
                drnm: read.drnm,
                wl_crit: wl,
            },
        )
    })
}

/// Condensed scorecard used by the Fig. 11/12 tables.
struct ScoreLite {
    write_delay: Option<f64>,
    read_delay: Option<f64>,
    drnm: f64,
    wl_crit: Option<WlCrit>,
}

/// Fig. 11: write and read delay vs V_DD for the four designs.
pub fn fig11(vdds: &[f64]) -> Table {
    let mut t = Table::new(
        "Fig. 11",
        "write/read delay vs VDD (proposed, CMOS, asym 6T, 7T)",
        &["vdd_V", "design", "write_delay_ps", "read_delay_ps"],
    );
    for (d, vdd, s) in scorecards(vdds) {
        t.push_row(vec![
            format!("{vdd:.1}"),
            d.label().into(),
            opt_ps(s.write_delay),
            opt_ps(s.read_delay),
        ]);
    }
    t.note("paper shape: CMOS writes fastest over most of the range; the proposed cell leads the TFET designs");
    t
}

/// Fig. 12: WL_crit and DRNM vs V_DD for the four designs.
pub fn fig12(vdds: &[f64]) -> Table {
    let mut t = Table::new(
        "Fig. 12",
        "WL_crit and DRNM vs VDD (proposed, CMOS, asym 6T, 7T)",
        &["vdd_V", "design", "wlcrit_ps", "drnm_mV"],
    );
    for (d, vdd, s) in scorecards(vdds) {
        let wl = match s.wl_crit {
            Some(w) => wl_cell(w),
            None => "undef".into(),
        };
        t.push_row(vec![format!("{vdd:.1}"), d.label().into(), wl, mv(s.drnm)]);
    }
    t.note("paper shape: all TFET SRAMs have larger WL_crit than CMOS; proposed has the smallest among them; asym WL_crit undefined");
    t
}

/// T1 (§5 prose): hold static power of the four designs across V_DD.
pub fn table_static_power(vdds: &[f64]) -> Table {
    let mut t = Table::new(
        "T1 (§5)",
        "hold static power (W) per design and VDD",
        &[
            "vdd_V",
            "proposed_W",
            "cmos_W",
            "asym6t_W",
            "tfet7t_W",
            "cmos_gap_orders",
        ],
    );
    let designs = Design::ALL;
    let powers = par_map(vdds.len() * designs.len(), None, |i| {
        let (d, vdd) = (designs[i % designs.len()], vdds[i / designs.len()]);
        static_power(&fast(d.params(vdd))).expect("power")
    });
    for (k, &vdd) in vdds.iter().enumerate() {
        let row = &powers[k * designs.len()..(k + 1) * designs.len()];
        let (p, c) = (row[0], row[1]);
        t.push_row(vec![
            format!("{vdd:.1}"),
            sci(p),
            sci(c),
            sci(row[2]),
            sci(row[3]),
            format!("{:.1}", (c / p).log10()),
        ]);
    }
    t.note("paper: proposed ~= 7T; CMOS 6-7 orders higher; asym ~4 orders over proposed at 0.5 V unless its bitlines may float");
    t
}

/// T2 (§5 prose): relative cell area.
pub fn table_area() -> Table {
    let mut t = Table::new(
        "T2 (§5)",
        "relative cell area (proposed = 1.00)",
        &["design", "area_units", "relative"],
    );
    let reference = Design::Proposed.params(0.8);
    let ref_area = area_of(&reference);
    for d in Design::ALL {
        let a = area_of(&d.params(0.8));
        t.push_row(vec![
            d.label().into(),
            format!("{a:.3}"),
            format!("{:.2}", a / ref_area),
        ]);
    }
    t.note("paper: the three 6T designs share the minimum area; the 7T pays 10-15% more");
    t
}

/// Array-level validation: `WL_crit` searched through the full R×R
/// netlist — wordline-driver slew, column-mux discharge and half-select
/// loading all physical — against the analytic single-cell model with the
/// column's row-scaled bitline load.
///
/// The table carries *physical values only* (no solver-effort counters):
/// `scripts/check.sh` diffs this CSV byte for byte between latency tiers
/// and across assembly thread counts, so everything printed must be
/// invariant under both knobs.
pub fn fig_array(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "Array",
        "array netlist WL_crit vs the analytic single-cell model",
        &[
            "rows",
            "cols",
            "wlcrit_netlist_ps",
            "wlcrit_analytic_ps",
            "ratio",
        ],
    );
    for &n in sizes {
        let mut cell = inp_cell(0.6);
        // The array engine's fixed-grid transient resolves WL_crit well at
        // a 4 ps step; halving it doubles every probe's cost for no change
        // in the printed 0.1 ps resolution.
        cell.sim.dt = 4e-12;
        let mut a = ArrayNetlist::build(ArraySpec::new(n, n, cell)).expect("array build");
        let netlist = a.wl_crit(0, 0).expect("array WL_crit");
        let analytic = a.analytic_wl_crit().expect("analytic WL_crit");
        let ratio = match (netlist, analytic) {
            (WlCrit::Finite(x), WlCrit::Finite(y)) => format!("{:.2}", x / y),
            _ => "-".into(),
        };
        t.push_row(vec![
            n.to_string(),
            n.to_string(),
            wl_cell(netlist),
            wl_cell(analytic),
            ratio,
        ]);
    }
    t.note(
        "shape check: netlist > analytic at every size (driver slew and mux discharge \
         only lengthen the critical pulse), same order of magnitude",
    );
    t
}

/// Per-transistor Vth-mismatch sigma of the rare-event yield model, V.
///
/// Calibrated so the read-disturb failure boundary (DRNM < 0) of the
/// proposed cell (β = 0.6, V_DD = 0.8 V) sits ~6σ deep: the dominant
/// single-device direction (pull-down-left Vth up) crosses zero near
/// +63 mV ≈ 10σ, and the full 14-dimensional boundary is reachable at a
/// combined depth where brute force sees ~1e-9 failure mass.
pub const YIELD_VTH_SIGMA: f64 = 6e-3;

/// Truncation bound of the Vth-mismatch factor (8σ keeps the truncation
/// negligible while staying far inside the device model's ±0.3 V
/// perturbative range).
pub const YIELD_VTH_BOUND: f64 = 8.0 * YIELD_VTH_SIGMA;

/// The rare-event variation model: the paper's ±5 % t_ox factor plus
/// calibrated per-transistor Vth mismatch.
pub fn yield_model() -> VariationModel {
    VariationModel::paper().with_vth(YIELD_VTH_SIGMA, YIELD_VTH_BOUND)
}

/// Rare-event read-disturb yield: the failure probability P(DRNM < 0) of
/// the proposed cell under [`yield_model`], estimated per `sigma_scale` by
/// scaled-sigma importance sampling (`tfet_sram::rare_event`). The
/// `sigma_scale = 1` row is brute force — at this tail depth it reports
/// zero failures at any affordable budget, which is the point.
///
/// Like `fig_array`, this CSV is byte-diffed across solver tiers: every
/// printed value is either exact integer bookkeeping or a 4-significant-
/// digit estimate, both invariant at the tiers' ~1e-5 agreement scale.
pub fn fig_yield(n: usize, seed: u64, scales: &[f64]) -> Table {
    let mut t = Table::new(
        "Yield",
        "rare-event read-disturb yield via scaled-sigma importance sampling",
        &[
            "sigma_scale",
            "samples",
            "survivors",
            "fails_raw",
            "p_fail",
            "std_err",
            "ess",
            "fail_64kb",
        ],
    );
    let base = fast(
        CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(0.6)
            .with_vdd(0.8),
    );
    let fmt_p = |p: Option<f64>| match p {
        Some(p) if p > 0.0 => sci(p),
        Some(_) => "0".into(),
        None => "-".into(),
    };
    for &scale in scales {
        let cfg = YieldConfig::new(n, seed)
            .with_model(yield_model())
            .with_sigma_scale(scale);
        let s = yield_read(&base, None, 0.0, &cfg).expect("yield study");
        t.push_row(vec![
            format!("{scale:.1}"),
            s.samples.to_string(),
            s.survivors.to_string(),
            s.failures.to_string(),
            fmt_p(s.p_fail),
            fmt_p(s.std_error),
            format!("{:.1}", s.ess),
            fmt_p(s.array_fail_prob(65536)),
        ]);
    }
    t.note(format!(
        "model: t_ox ±5% (paper) + Vth mismatch sigma {} mV/device, truncated at 8 sigma",
        YIELD_VTH_SIGMA * 1e3
    ));
    t.note(
        "shape check: brute force (scale 1.0) reports zero failures; scaled proposals \
         resolve a nonzero ~6-sigma tail estimate from the same budget",
    );
    t.note("low ESS flags weight spread: trust p_fail only with std_err well under it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02a_has_iv_rows_and_calibration_note() {
        let t = fig02a();
        assert_eq!(t.rows.len(), 21);
        assert!(t.notes[0].contains("I_on"));
        assert!(!t.render().is_empty());
        assert!(t.to_csv().contains("vgs_V"));
    }

    #[test]
    fn fig02b_shows_gate_control_loss() {
        let t = fig02b();
        assert_eq!(t.rows.len(), 11);
        assert!(t.notes[0].contains("gate control lost"));
    }

    #[test]
    fn fig04_small_grid_reproduces_shape() {
        let t = fig04(&[0.6, 2.0]);
        assert_eq!(t.rows.len(), 2);
        // inward-n infinite everywhere.
        assert!(t
            .notes
            .iter()
            .any(|n| n.contains("infinite at every beta: true")));
    }

    #[test]
    fn table_area_has_four_designs() {
        let t = table_area();
        assert_eq!(t.rows.len(), 4);
        // 7T is the largest.
        let rel: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().unwrap())
            .collect();
        let seven = t.rows.iter().position(|r| r[0].contains("7T")).unwrap();
        assert!(rel.iter().all(|&x| x <= rel[seven]));
    }

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("X", "test", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("note");
        let s = t.render();
        assert!(s.contains("== X — test =="));
        assert!(s.contains("# note"));
    }
}
