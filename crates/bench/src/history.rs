//! Deterministic perf-regression history: archive bench run reports, diff
//! their machine-independent cost counters against a committed baseline.
//!
//! The throughput benches write `results/BENCH_<name>.json` run reports
//! whose `counters` section is deterministic by construction — identical
//! across repeat runs, thread counts and machines (wall-clock lives in the
//! excluded `timings_ns` section). That makes the counters a perf signal
//! that can be *committed and gated in CI without a quiet lab machine*: a
//! change that doubles `newton.jac_refactored` or `devices.evals` is a real
//! performance regression regardless of where it runs.
//!
//! This module implements the `tfet-bench history` subcommand plumbing:
//!
//! * [`archive`] — snapshot every `BENCH_*.json` in a bench directory into
//!   `results/history/` as [`HistoryEntry`] documents keyed by git SHA,
//!   with thread-count and solver-strategy metadata;
//! * [`check`] — diff the current `BENCH_*.json` cost counters against the
//!   committed `baseline--<bench>.json` entries and fail when any
//!   [`COST_COUNTERS`] counter grew beyond tolerance.
//!
//! Counters not on the cost list (cache-hit counts, derived ratios,
//! workload-size tallies) are diffed for the report but never fail the
//! check: only "more work done" counters gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tfet_obs::{ParseError, Value};

/// Default history directory, relative to the workspace root.
pub const DEFAULT_HISTORY_DIR: &str = "results/history";

/// Default bench-report directory, relative to the workspace root.
pub const DEFAULT_BENCH_DIR: &str = "results";

/// Default regression tolerance: a cost counter may grow this many percent
/// over baseline before the check fails. The engine is deterministic, so an
/// unchanged tree reproduces the baseline *exactly*; the headroom only
/// absorbs deliberate small algorithmic shifts that a PR argues are
/// acceptable without re-baselining.
pub const DEFAULT_TOLERANCE_PCT: f64 = 2.0;

/// Counters where an increase means the engine did more work — the set the
/// regression gate fails on. Everything else in the report (cache-hit
/// tallies, derived percentages, workload-size counts) is informational.
pub const COST_COUNTERS: &[&str] = &[
    "newton.jac_refactored",
    "newton.failures",
    "newton.gmin_ladders",
    "devices.evals",
    "solver.sparse_refactorizations",
    "solver.sparse_solves",
    "lte.rejected_steps",
    "transient.rescue_attempts",
    "transient.failures",
];

/// Schema identifier of an archived history entry document.
pub const ENTRY_SCHEMA: &str = "tfet-bench.history-entry";

/// Schema version of an archived history entry document.
pub const ENTRY_VERSION: u32 = 1;

/// One archived bench snapshot: the deterministic counters of a
/// `BENCH_<bench>.json` run report plus the provenance metadata needed to
/// interpret them later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Bench name (the `<name>` of `BENCH_<name>.json`).
    pub bench: String,
    /// Git commit SHA the snapshot was taken at (`unknown` outside a repo).
    pub git_sha: String,
    /// Device-evaluation worker threads configured when the bench ran. The
    /// counters are thread-invariant by contract — this is provenance, not
    /// a cache key.
    pub threads: u64,
    /// Solver strategy label (e.g. `sparse`).
    pub strategy: String,
    /// The run report's `counters` section, name-sorted.
    pub counters: BTreeMap<String, u64>,
}

impl HistoryEntry {
    /// Serializes the entry as its versioned JSON document.
    pub fn to_json(&self) -> String {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                .collect(),
        );
        Value::Obj(vec![
            ("schema".into(), Value::text(ENTRY_SCHEMA)),
            ("version".into(), Value::UInt(u64::from(ENTRY_VERSION))),
            ("bench".into(), Value::text(self.bench.clone())),
            ("git_sha".into(), Value::text(self.git_sha.clone())),
            ("threads".into(), Value::UInt(self.threads)),
            ("strategy".into(), Value::text(self.strategy.clone())),
            ("counters".into(), counters),
        ])
        .to_json()
    }

    /// Parses an entry document, validating schema and version.
    ///
    /// # Errors
    ///
    /// Malformed JSON, wrong schema/version, or missing fields.
    pub fn parse(json: &str) -> Result<HistoryEntry, String> {
        let v = Value::parse(json).map_err(|e: ParseError| e.to_string())?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
        if schema != ENTRY_SCHEMA {
            return Err(format!("not a history entry (schema {schema:?})"));
        }
        let version = v.get("version").and_then(Value::as_u64).unwrap_or(0);
        if version != u64::from(ENTRY_VERSION) {
            return Err(format!("unsupported history-entry version {version}"));
        }
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let counters = v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("missing counters object")?
            .iter()
            .filter_map(|(k, val)| val.as_u64().map(|n| (k.clone(), n)))
            .collect();
        Ok(HistoryEntry {
            bench: text("bench")?,
            git_sha: text("git_sha")?,
            threads: v.get("threads").and_then(Value::as_u64).unwrap_or(0),
            strategy: text("strategy")?,
            counters,
        })
    }
}

/// Extracts the `counters` section from a `tfet-obs.run-report` JSON
/// document (any version — the section predates v1).
///
/// # Errors
///
/// Malformed JSON or a document that is not a run report.
pub fn report_counters(json: &str) -> Result<BTreeMap<String, u64>, String> {
    let v = Value::parse(json).map_err(|e| e.to_string())?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
    if schema != "tfet-obs.run-report" {
        return Err(format!("not a run report (schema {schema:?})"));
    }
    Ok(v.get("counters")
        .and_then(Value::as_obj)
        .unwrap_or(&[])
        .iter()
        .filter_map(|(k, val)| val.as_u64().map(|n| (k.clone(), n)))
        .collect())
}

/// The `BENCH_*.json` files under `dir`, as `(bench_name, path)` sorted by
/// name (deterministic iteration order regardless of filesystem).
///
/// # Errors
///
/// Directory read failures.
pub fn bench_reports(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        {
            out.push((stem.to_string(), path));
        }
    }
    out.sort();
    Ok(out)
}

/// Result of diffing one bench's counters against its baseline.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// `(counter, baseline, current)` for cost counters that regressed
    /// beyond tolerance.
    pub regressions: Vec<(String, u64, u64)>,
    /// `(counter, baseline, current)` for cost counters that improved.
    pub improvements: Vec<(String, u64, u64)>,
    /// Every counter whose value changed, cost or not, rendered for the
    /// report: `(counter, baseline, current)`.
    pub changed: Vec<(String, u64, u64)>,
    /// Counters present on only one side (name, which side has it).
    pub lopsided: Vec<(String, &'static str)>,
}

impl Diff {
    /// Whether the diff passes the regression gate.
    pub fn passes(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs `current` counters against `baseline` at `tolerance_pct`.
///
/// A [`COST_COUNTERS`] counter regresses when it *grows* more than
/// `tolerance_pct` percent over baseline (a zero baseline regresses on any
/// growth); shrinking is an improvement and never fails. Non-cost counters
/// are reported under `changed` but cannot regress. A cost counter missing
/// from `current` is fine (the workload stopped doing that work); one
/// missing from `baseline` but present now is treated as growth from zero.
pub fn diff_counters(
    baseline: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    tolerance_pct: f64,
) -> Diff {
    let mut diff = Diff::default();
    let names: std::collections::BTreeSet<&String> =
        baseline.keys().chain(current.keys()).collect();
    for name in names {
        let is_cost = COST_COUNTERS.contains(&name.as_str());
        match (baseline.get(name), current.get(name)) {
            (Some(&b), Some(&c)) => {
                if b != c {
                    diff.changed.push((name.clone(), b, c));
                    if is_cost {
                        if c > b && exceeds(b, c, tolerance_pct) {
                            diff.regressions.push((name.clone(), b, c));
                        } else if c < b {
                            diff.improvements.push((name.clone(), b, c));
                        }
                    }
                }
            }
            (None, Some(&c)) => {
                diff.lopsided.push((name.clone(), "current-only"));
                if is_cost && c > 0 {
                    diff.regressions.push((name.clone(), 0, c));
                }
            }
            (Some(_), None) => diff.lopsided.push((name.clone(), "baseline-only")),
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
    diff
}

/// Whether growing from `b` to `c` exceeds `tolerance_pct` percent.
fn exceeds(b: u64, c: u64, tolerance_pct: f64) -> bool {
    if b == 0 {
        return c > 0;
    }
    let growth_pct = ((c - b) as f64 / b as f64) * 100.0;
    growth_pct > tolerance_pct
}

/// File name of the committed baseline entry for a bench.
pub fn baseline_file(bench: &str) -> String {
    format!("baseline--{bench}.json")
}

/// File name of a SHA-keyed archived entry (first 12 SHA characters, the
/// conventional abbreviated commit id).
pub fn entry_file(bench: &str, sha: &str) -> String {
    let short: String = sha.chars().take(12).collect();
    format!("{bench}--{short}.json")
}

/// Archives every `BENCH_*.json` under `bench_dir` into `history_dir`.
///
/// Each report becomes a [`HistoryEntry`] written twice when `as_baseline`
/// is set — once under its SHA-keyed name, once as the bench's committed
/// baseline — and once (SHA-keyed only) otherwise. Returns the written
/// paths.
///
/// # Errors
///
/// Missing/unreadable reports or an unwritable history directory.
pub fn archive(
    bench_dir: &Path,
    history_dir: &Path,
    git_sha: &str,
    threads: u64,
    strategy: &str,
    as_baseline: bool,
) -> Result<Vec<PathBuf>, String> {
    let reports = bench_reports(bench_dir)?;
    if reports.is_empty() {
        return Err(format!(
            "no BENCH_*.json reports under {}",
            bench_dir.display()
        ));
    }
    std::fs::create_dir_all(history_dir)
        .map_err(|e| format!("cannot create {}: {e}", history_dir.display()))?;
    let mut written = Vec::new();
    for (bench, path) in reports {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let counters = report_counters(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry = HistoryEntry {
            bench: bench.clone(),
            git_sha: git_sha.to_string(),
            threads,
            strategy: strategy.to_string(),
            counters,
        };
        let mut names = vec![entry_file(&bench, git_sha)];
        if as_baseline {
            names.push(baseline_file(&bench));
        }
        for name in names {
            let dest = history_dir.join(name);
            std::fs::write(&dest, entry.to_json())
                .map_err(|e| format!("cannot write {}: {e}", dest.display()))?;
            written.push(dest);
        }
    }
    Ok(written)
}

/// Outcome of a [`check`] run: the per-bench diffs plus a rendered report.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Whether every diffed bench passed the regression gate.
    pub passed: bool,
    /// Human-readable report (one block per bench).
    pub report: String,
}

/// Diffs every `BENCH_*.json` under `bench_dir` against its committed
/// baseline in `history_dir`, at `tolerance_pct`.
///
/// A bench without a committed baseline is skipped with a note (new benches
/// must be baselined explicitly, not silently gated); a baseline without a
/// current report is also only a note (the bench may simply not have run).
///
/// # Errors
///
/// Unreadable directories or malformed documents — *not* regressions,
/// which are reported through [`CheckOutcome::passed`].
pub fn check(
    bench_dir: &Path,
    history_dir: &Path,
    tolerance_pct: f64,
) -> Result<CheckOutcome, String> {
    let reports = bench_reports(bench_dir)?;
    if reports.is_empty() {
        return Err(format!(
            "no BENCH_*.json reports under {}",
            bench_dir.display()
        ));
    }
    let mut passed = true;
    let mut report = String::new();
    let mut gated = 0usize;
    for (bench, path) in reports {
        let baseline_path = history_dir.join(baseline_file(&bench));
        if !baseline_path.exists() {
            let _ = writeln!(report, "{bench}: SKIP (no committed baseline)");
            continue;
        }
        let baseline = HistoryEntry::parse(
            &std::fs::read_to_string(&baseline_path)
                .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?,
        )
        .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let current = report_counters(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        let diff = diff_counters(&baseline.counters, &current, tolerance_pct);
        gated += 1;
        let verdict = if diff.passes() { "OK" } else { "REGRESSION" };
        let _ = writeln!(
            report,
            "{bench}: {verdict} (baseline {}, {} counters changed)",
            baseline.git_sha.chars().take(12).collect::<String>(),
            diff.changed.len()
        );
        for (name, b, c) in &diff.regressions {
            let _ = writeln!(report, "  FAIL {name}: {b} -> {c} (+{})", c - b);
        }
        for (name, b, c) in &diff.improvements {
            let _ = writeln!(report, "  good {name}: {b} -> {c} (-{})", b - c);
        }
        for (name, b, c) in diff
            .changed
            .iter()
            .filter(|(n, ..)| !COST_COUNTERS.contains(&n.as_str()))
        {
            let _ = writeln!(report, "  info {name}: {b} -> {c}");
        }
        for (name, side) in &diff.lopsided {
            let _ = writeln!(report, "  note {name}: {side}");
        }
        passed &= diff.passes();
    }
    if gated == 0 {
        let _ = writeln!(report, "no bench had a committed baseline — nothing gated");
    }
    Ok(CheckOutcome { passed, report })
}

/// Lists the archived entries under `history_dir`, name-sorted.
///
/// # Errors
///
/// Unreadable directory (a missing one lists as empty).
pub fn list(history_dir: &Path) -> Result<Vec<(PathBuf, HistoryEntry)>, String> {
    if !history_dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(history_dir)
        .map_err(|e| format!("cannot read {}: {e}", history_dir.display()))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        match HistoryEntry::parse(&json) {
            Ok(entry) => out.push((path, entry)),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn entry_round_trips_through_json() {
        let entry = HistoryEntry {
            bench: "array".into(),
            git_sha: "c47413fdeadbeef".into(),
            threads: 8,
            strategy: "sparse".into(),
            counters: counters(&[("devices.evals", 123), ("newton.jac_refactored", 7)]),
        };
        let json = entry.to_json();
        assert!(json.starts_with(r#"{"schema":"tfet-bench.history-entry","version":1"#));
        assert_eq!(HistoryEntry::parse(&json).unwrap(), entry);
        assert!(HistoryEntry::parse(r#"{"schema":"other"}"#).is_err());
        assert!(HistoryEntry::parse("not json").is_err());
    }

    #[test]
    fn report_counters_reads_run_reports_only() {
        let report =
            r#"{"schema":"tfet-obs.run-report","version":3,"counters":{"devices.evals":42,"x":1}}"#;
        let c = report_counters(report).unwrap();
        assert_eq!(c.get("devices.evals"), Some(&42));
        assert!(report_counters(r#"{"schema":"nope"}"#).is_err());
    }

    #[test]
    fn diff_flags_cost_growth_only() {
        let base = counters(&[
            ("devices.evals", 1000),
            ("newton.jac_refactored", 100),
            ("devices.bypassed", 500),
        ]);
        // Within tolerance: 1% growth on a cost counter passes at 2%.
        let near = counters(&[
            ("devices.evals", 1010),
            ("newton.jac_refactored", 100),
            ("devices.bypassed", 9999),
        ]);
        let d = diff_counters(&base, &near, DEFAULT_TOLERANCE_PCT);
        assert!(d.passes(), "{d:?}");
        assert_eq!(d.changed.len(), 2, "evals and bypassed changed");

        // Beyond tolerance: fails, and names the counter.
        let worse = counters(&[("devices.evals", 1500), ("newton.jac_refactored", 100)]);
        let d = diff_counters(&base, &worse, DEFAULT_TOLERANCE_PCT);
        assert!(!d.passes());
        assert_eq!(
            d.regressions,
            vec![("devices.evals".to_string(), 1000, 1500)]
        );

        // Improvement on a cost counter never fails.
        let better = counters(&[("devices.evals", 10), ("newton.jac_refactored", 100)]);
        let d = diff_counters(&base, &better, DEFAULT_TOLERANCE_PCT);
        assert!(d.passes());
        assert_eq!(
            d.improvements,
            vec![("devices.evals".to_string(), 1000, 10)]
        );

        // A cost counter appearing from nothing is growth from zero.
        let novel = counters(&[("devices.evals", 1000), ("transient.failures", 1)]);
        let d = diff_counters(&base, &novel, DEFAULT_TOLERANCE_PCT);
        assert!(!d.passes());
    }

    #[test]
    fn archive_then_check_round_trip() {
        let dir = std::env::temp_dir().join(format!("tfet-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bench_dir = dir.join("bench");
        let hist_dir = dir.join("history");
        std::fs::create_dir_all(&bench_dir).unwrap();
        let report = r#"{"schema":"tfet-obs.run-report","version":3,"counters":{"devices.evals":100,"newton.jac_refactored":10}}"#;
        std::fs::write(bench_dir.join("BENCH_demo.json"), report).unwrap();

        let written = archive(&bench_dir, &hist_dir, "abc123def4567890", 1, "sparse", true)
            .expect("archive succeeds");
        assert_eq!(written.len(), 2, "sha-keyed + baseline: {written:?}");
        assert!(hist_dir.join("demo--abc123def456.json").exists());
        assert!(hist_dir.join("baseline--demo.json").exists());
        assert_eq!(list(&hist_dir).unwrap().len(), 2);

        // Unchanged report: passes.
        let ok = check(&bench_dir, &hist_dir, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(ok.passed, "{}", ok.report);

        // Tampered cost counter: fails and names it.
        let worse = report.replace(r#""devices.evals":100"#, r#""devices.evals":200"#);
        std::fs::write(bench_dir.join("BENCH_demo.json"), worse).unwrap();
        let bad = check(&bench_dir, &hist_dir, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(!bad.passed);
        assert!(
            bad.report.contains("FAIL devices.evals: 100 -> 200"),
            "{}",
            bad.report
        );

        // A bench with no baseline is skipped, not gated.
        std::fs::write(
            bench_dir.join("BENCH_new.json"),
            r#"{"schema":"tfet-obs.run-report","version":3,"counters":{}}"#,
        )
        .unwrap();
        std::fs::write(bench_dir.join("BENCH_demo.json"), report).unwrap();
        let mixed = check(&bench_dir, &hist_dir, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(mixed.passed);
        assert!(mixed.report.contains("new: SKIP"), "{}", mixed.report);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
