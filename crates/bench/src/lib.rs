//! Figure and table regeneration for the DATE'11 TFET SRAM paper.
//!
//! Every data-bearing figure and comparison of the paper has a module here
//! that recomputes its series through the full stack and renders it as a
//! [`Table`]. The Criterion benches under `benches/` print each table once
//! and time its computational kernel; the `figures` binary dumps everything
//! (text + CSV) in one run.
//!
//! Absolute values come from our substrate (analytical compact models + the
//! in-tree MNA simulator), not the authors' TCAD + commercial SPICE, so the
//! numbers to compare are *shapes*: orderings, crossovers, and orders of
//! magnitude. `EXPERIMENTS.md` records paper-vs-measured per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

pub mod experiments;
pub mod history;

/// A rendered experiment result: a titled grid of cells plus notes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier, e.g. `"Fig. 4(a)"`.
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape checks, paper comparison).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row of formatted cells.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }

    /// Renders as CSV (notes become `#` comment lines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Runs `workload` once with tracing enabled on a clean registry and writes
/// the captured [`tfet_obs::RunReport`] to `results/BENCH_<name>.json`.
///
/// Tracing is switched off again before returning, so Criterion timing loops
/// that follow pay only the disabled-path cost (one relaxed atomic load per
/// instrumentation site). The JSON is the versioned `tfet-obs.run-report`
/// schema documented in `docs/RUN_REPORT.md`; because the workload runs under
/// a fresh registry with deterministic aggregation, the file is bit-identical
/// across repeat runs and thread counts.
pub fn write_bench_report(name: &str, workload: impl FnOnce()) -> std::path::PathBuf {
    tfet_obs::reset();
    tfet_obs::enable();
    workload();
    tfet_obs::disable();
    let report = tfet_obs::RunReport::capture();
    // Bench binaries run with the package directory as CWD; anchor the
    // report next to the figure CSVs in the workspace-root `results/`.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(format!("../../results/BENCH_{name}.json"));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("run report: {}", path.display()),
        Err(e) => eprintln!("run report: failed to write {}: {e}", path.display()),
    }
    path
}

/// One-decimal formatting capped at four significant digits.
///
/// Figure cells must render identically across solver configurations that
/// are equivalent only to ~1e-5 relative (sparse vs dense factorization,
/// device-latency tiers) — `scripts/check.sh` diffs the CSVs byte-for-byte.
/// A fixed `{:.1}` violates that for magnitudes >= 1000, where its 0.05
/// rounding quantum shrinks below the solver-tier agreement scale; capping
/// the display at four significant digits keeps the quantum safely above
/// it at every magnitude.
fn fixed1_sig4(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Formats seconds as picoseconds with unit.
pub fn ps(t: f64) -> String {
    fixed1_sig4(t * 1e12)
}

/// Formats volts as millivolts.
pub fn mv(v: f64) -> String {
    fixed1_sig4(v * 1e3)
}

/// Formats a quantity in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}
