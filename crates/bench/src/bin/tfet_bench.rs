//! `tfet-bench` — bench-report tooling; currently the `history`
//! perf-regression harness.
//!
//! The throughput benches emit `results/BENCH_*.json` run reports whose
//! `counters` section is deterministic (identical across machines and
//! thread counts). `history` archives those counters into
//! `results/history/` keyed by git SHA and diffs them against a committed
//! baseline, so a PR that silently doubles Newton refactorizations fails
//! `scripts/check.sh` without anyone timing anything.
//!
//! Usage:
//!
//! ```text
//! tfet-bench history archive [--as-baseline] [--sha SHA] [--strategy S]
//!                            [--bench-dir DIR] [--history-dir DIR]
//! tfet-bench history check   [--tolerance PCT]
//!                            [--bench-dir DIR] [--history-dir DIR]
//! tfet-bench history list    [--history-dir DIR]
//! ```
//!
//! Exit codes: `0` success / check passed, `1` check found a regression,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use tfet_bench::history;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("history") => history_cmd(&args[1..]),
        _ => {
            eprintln!("usage: tfet-bench history <archive|check|list> [flags]");
            ExitCode::from(2)
        }
    }
}

/// Value of `--flag VALUE` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn bench_dir(args: &[String]) -> PathBuf {
    PathBuf::from(flag_value(args, "--bench-dir").unwrap_or_else(|| {
        format!(
            "{}/../../{}",
            env!("CARGO_MANIFEST_DIR"),
            history::DEFAULT_BENCH_DIR
        )
    }))
}

fn history_dir(args: &[String]) -> PathBuf {
    PathBuf::from(flag_value(args, "--history-dir").unwrap_or_else(|| {
        format!(
            "{}/../../{}",
            env!("CARGO_MANIFEST_DIR"),
            history::DEFAULT_HISTORY_DIR
        )
    }))
}

/// The current git commit SHA, or `unknown` outside a repository.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn history_cmd(args: &[String]) -> ExitCode {
    let sub = args.first().map(String::as_str);
    let rest = args.get(1..).unwrap_or(&[]);
    match sub {
        Some("archive") => {
            let sha = flag_value(rest, "--sha").unwrap_or_else(git_sha);
            let strategy = flag_value(rest, "--strategy").unwrap_or_else(|| "sparse".to_string());
            let threads = tfet_numerics::parallel::default_threads() as u64;
            let as_baseline = rest.iter().any(|a| a == "--as-baseline");
            match history::archive(
                &bench_dir(rest),
                &history_dir(rest),
                &sha,
                threads,
                &strategy,
                as_baseline,
            ) {
                Ok(written) => {
                    for path in written {
                        println!("archived: {}", path.display());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("archive failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("check") => {
            let tolerance = flag_value(rest, "--tolerance")
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(history::DEFAULT_TOLERANCE_PCT);
            match history::check(&bench_dir(rest), &history_dir(rest), tolerance) {
                Ok(outcome) => {
                    print!("{}", outcome.report);
                    if outcome.passed {
                        println!("history check: PASS (tolerance {tolerance}%)");
                        ExitCode::SUCCESS
                    } else {
                        println!("history check: FAIL (tolerance {tolerance}%)");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("check failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("list") => match history::list(&history_dir(rest)) {
            Ok(entries) => {
                for (path, e) in entries {
                    println!(
                        "{}: bench={} sha={} threads={} strategy={} counters={}",
                        path.file_name().unwrap_or_default().to_string_lossy(),
                        e.bench,
                        e.git_sha.chars().take(12).collect::<String>(),
                        e.threads,
                        e.strategy,
                        e.counters.len()
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("list failed: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: tfet-bench history <archive|check|list> [flags]");
            ExitCode::from(2)
        }
    }
}
