//! Regenerates every figure and table of the paper in one run.
//!
//! Prints each experiment as an aligned text table and writes CSVs to
//! `results/`. Full-resolution settings; expect a few minutes in release
//! mode.
//!
//! Usage:
//! `cargo run --release -p tfet-bench --bin figures [--quick] [--dense] [--latency-off] [--out DIR]`
//!
//! * `--quick` — coarse grids for a fast smoke run;
//! * `--dense` — force the legacy dense linear solver process-wide (the
//!   sparse/dense figure-equivalence gate in `scripts/check.sh` diffs the
//!   CSVs from a `--dense` run against a default run byte for byte);
//! * `--latency-off` — force full device evaluation process-wide (the
//!   latency-tier figure-identity gate diffs a `--latency-off` run against
//!   a default run the same way);
//! * `--out DIR` — write CSVs to `DIR` instead of `results/`.

use std::fs;
use tfet_bench::experiments as exp;
use tfet_bench::Table;
use tfet_sram::prelude::{DeviceLatency, SolverStrategy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--dense") {
        SolverStrategy::set_process_default(SolverStrategy::Dense);
    }
    if args.iter().any(|a| a == "--latency-off") {
        DeviceLatency::set_process_default(DeviceLatency::Off);
    }
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results".to_string());
    let out_dir = out_dir.as_str();
    fs::create_dir_all(out_dir).expect("create results dir");

    // Grids: full paper resolution vs quick smoke.
    type Grids = (
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        usize,
        Vec<usize>,
        usize,
        Vec<f64>,
    );
    let (betas_fig4, betas_wa, betas_ra, vdds, mc_n, array_sizes, yield_n, yield_scales): Grids =
        if quick {
            (
                vec![0.6, 1.0, 2.0],
                vec![1.2, 2.0],
                vec![0.4, 0.8],
                vec![0.6, 0.8],
                8,
                vec![8],
                48,
                vec![1.0, 2.5],
            )
        } else {
            (
                vec![0.4, 0.6, 0.8, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0],
                vec![1.2, 1.5, 2.0, 2.5, 3.0],
                vec![0.3, 0.4, 0.5, 0.6, 0.8, 1.0],
                vec![0.5, 0.6, 0.7, 0.8, 0.9],
                120,
                vec![8, 16],
                512,
                vec![1.0, 1.5, 2.0, 2.5, 3.0],
            )
        };

    let tables: Vec<Table> = vec![
        exp::fig02a(),
        exp::fig02b(),
        exp::fig04(&betas_fig4),
        exp::fig06(&betas_wa),
        exp::fig07(&betas_ra),
        exp::fig08(&betas_wa, &betas_ra),
        exp::fig09(mc_n, 2011),
        exp::fig10(mc_n, 2011),
        exp::fig11(&vdds),
        exp::fig12(&vdds),
        exp::table_static_power(&vdds),
        exp::table_area(),
        exp::fig_array(&array_sizes),
        exp::fig_yield(yield_n, 2011, &yield_scales),
    ];

    for t in &tables {
        println!("{}", t.render());
        let slug: String =
            t.id.chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect::<String>()
                .to_lowercase();
        let path = format!("{out_dir}/{slug}.csv");
        fs::write(&path, t.to_csv()).expect("write csv");
        println!("-> {path}\n");
    }
}
