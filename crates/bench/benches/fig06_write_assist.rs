//! Fig. 6(e) — WL_crit vs β for the four write-assist techniques.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::metrics::wl_crit;
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig06(&[1.2, 1.5, 2.0, 2.5, 3.0]).render());

    let params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
    let mut g = c.benchmark_group("fig06_write_assist");
    g.sample_size(10);
    g.bench_function("wl_crit_with_gnd_raising", |b| {
        b.iter(|| black_box(wl_crit(&params, Some(WriteAssist::GndRaising)).unwrap()))
    });
    g.bench_function("wl_crit_with_wordline_lowering", |b| {
        b.iter(|| black_box(wl_crit(&params, Some(WriteAssist::WordlineLowering)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
