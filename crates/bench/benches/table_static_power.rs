//! T1 (§5 prose) — hold static power of the four designs across V_DD.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::compare::Design;
use tfet_sram::metrics::static_power;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        exp::table_static_power(&[0.5, 0.6, 0.7, 0.8, 0.9]).render()
    );

    let proposed = exp::fast(Design::Proposed.params(0.8));
    let cmos = exp::fast(Design::Cmos.params(0.8));
    let mut g = c.benchmark_group("table_static_power");
    g.bench_function("hold_dc_op_tfet", |b| {
        b.iter(|| black_box(static_power(&proposed).unwrap()))
    });
    g.bench_function("hold_dc_op_cmos", |b| {
        b.iter(|| black_box(static_power(&cmos).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
