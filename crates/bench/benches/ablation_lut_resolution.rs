//! Ablation — lookup-table resolution. The paper's modeling methodology is
//! a 2-D I-V lookup table; this bench quantifies the interpolation error of
//! that methodology against the analytic model as the grid is refined, both
//! at the device level and propagated through an inverter's DC transfer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tfet_bench::Table;
use tfet_circuit::{Circuit, Waveform};
use tfet_devices::model::DeviceModel;
use tfet_devices::{LutDevice, NTfet, PTfet};

/// Worst relative current error over an operating-region probe set.
fn device_error(lut: &LutDevice<NTfet>, analytic: &NTfet) -> f64 {
    let mut worst = 0.0f64;
    for &(vg, vd) in &[(0.8, 0.8), (0.6, 0.4), (0.45, 0.7), (0.9, 0.2), (0.7, 0.55)] {
        let a = analytic.ids_per_um(vg, vd, 0.0);
        let l = lut.ids_per_um(vg, vd, 0.0);
        worst = worst.max((a - l).abs() / a.abs().max(1e-18));
    }
    worst
}

/// Mid-rail inverter output voltage with the given device pair.
fn inverter_vout(n: Arc<dyn DeviceModel>, p: Arc<dyn DeviceModel>) -> f64 {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let inp = c.node("in");
    let out = c.node("out");
    c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
    c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.4));
    c.transistor("MP", p, out, inp, vdd, 0.1);
    c.transistor("MN", n, out, inp, Circuit::GND, 0.1);
    c.dc_op().expect("inverter op").voltage(out)
}

fn sweep() -> Table {
    let mut t = Table::new(
        "Ablation A1",
        "LUT grid resolution vs device and circuit error",
        &[
            "grid",
            "step_mV",
            "worst_dev_err_pct",
            "inverter_vout_err_mV",
        ],
    );
    let analytic = NTfet::nominal();
    let exact = inverter_vout(Arc::new(NTfet::nominal()), Arc::new(PTfet::nominal()));
    for n_pts in [25usize, 61, 121, 241, 481] {
        let lut_n = LutDevice::compile(NTfet::nominal(), (-1.2, 1.2), n_pts, (-1.2, 1.2), n_pts);
        let lut_p = LutDevice::compile(PTfet::nominal(), (-1.2, 1.2), n_pts, (-1.2, 1.2), n_pts);
        let err = device_error(&lut_n, &analytic);
        let vout = inverter_vout(Arc::new(lut_n), Arc::new(lut_p));
        t.push_row(vec![
            format!("{n_pts}x{n_pts}"),
            format!("{:.1}", 2400.0 / (n_pts - 1) as f64),
            format!("{:.2}", err * 100.0),
            format!("{:.2}", (vout - exact).abs() * 1e3),
        ]);
    }
    t.note(
        "the paper's 10 mV-class tables (241x241) keep device error ~1% and circuit error sub-mV",
    );
    t
}

fn bench(c: &mut Criterion) {
    println!("{}", sweep().render());

    let mut g = c.benchmark_group("ablation_lut_resolution");
    g.sample_size(10);
    g.bench_function("compile_default_grid", |b| {
        b.iter(|| black_box(LutDevice::compile_default(NTfet::nominal())))
    });
    let lut = LutDevice::compile_default(NTfet::nominal());
    let analytic = NTfet::nominal();
    g.bench_function("lut_eval", |b| {
        b.iter(|| black_box(lut.ids_per_um(0.73, 0.61, 0.0)))
    });
    g.bench_function("analytic_eval", |b| {
        b.iter(|| black_box(analytic.ids_per_um(0.73, 0.61, 0.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
