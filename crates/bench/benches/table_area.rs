//! T2 (§5 prose) — relative cell area of the four designs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::area::cell_area;
use tfet_sram::tech::{CellKind, CellSizing};

fn bench(c: &mut Criterion) {
    println!("{}", exp::table_area().render());

    let sizing = CellSizing::with_beta(0.6);
    let mut g = c.benchmark_group("table_area");
    g.bench_function("cell_area_model", |b| {
        b.iter(|| black_box(cell_area(CellKind::Tfet7T, black_box(&sizing))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
