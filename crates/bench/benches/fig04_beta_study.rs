//! Fig. 4 — DRNM and WL_crit vs cell ratio β for inward-n/-p TFET and CMOS.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::metrics::{read_metrics, wl_crit};
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        exp::fig04(&[0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0]).render()
    );

    let params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    let mut g = c.benchmark_group("fig04_beta_study");
    g.sample_size(10);
    g.bench_function("drnm_measurement", |b| {
        b.iter(|| black_box(read_metrics(&params, None).unwrap().drnm))
    });
    g.bench_function("wl_crit_search", |b| {
        b.iter(|| black_box(wl_crit(&params, None).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
