//! Fig. 10 — Monte-Carlo DRNM under read-assist sizing (β = 0.6) with
//! ±5 % gate-oxide-thickness variation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::montecarlo::mc_drnm;
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig10(40, 2011).render());

    let params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    let mut g = c.benchmark_group("fig10_mc_read");
    g.sample_size(10);
    g.bench_function("mc_drnm_8_samples", |b| {
        b.iter(|| black_box(mc_drnm(&params, Some(ReadAssist::GndLowering), 8, 7).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
