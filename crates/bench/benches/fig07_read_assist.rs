//! Fig. 7(e) — DRNM vs β for the four read-assist techniques.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::metrics::read_metrics;
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig07(&[0.3, 0.4, 0.5, 0.6, 0.8, 1.0]).render());

    let params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    let mut g = c.benchmark_group("fig07_read_assist");
    g.sample_size(10);
    g.bench_function("drnm_with_gnd_lowering", |b| {
        b.iter(|| {
            black_box(
                read_metrics(&params, Some(ReadAssist::GndLowering))
                    .unwrap()
                    .drnm,
            )
        })
    });
    g.bench_function("drnm_with_wordline_raising", |b| {
        b.iter(|| {
            black_box(
                read_metrics(&params, Some(ReadAssist::WordlineRaising))
                    .unwrap()
                    .drnm,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
