//! Fig. 11 — write and read delay vs V_DD for the four §5 designs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::compare::Design;
use tfet_sram::metrics::write_delay;

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig11(&[0.5, 0.6, 0.7, 0.8, 0.9]).render());

    let params = exp::fast(Design::Proposed.params(0.8));
    let cmos = exp::fast(Design::Cmos.params(0.8));
    let mut g = c.benchmark_group("fig11_delay_vs_vdd");
    g.sample_size(10);
    g.bench_function("write_delay_proposed", |b| {
        b.iter(|| black_box(write_delay(&params, None).unwrap()))
    });
    g.bench_function("write_delay_cmos", |b| {
        b.iter(|| black_box(write_delay(&cmos, None).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
