//! Fig. 12 — WL_crit and DRNM vs V_DD for the four §5 designs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::compare::Design;
use tfet_sram::metrics::read_metrics;

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig12(&[0.5, 0.6, 0.7, 0.8, 0.9]).render());

    let proposed = exp::fast(Design::Proposed.params(0.8));
    let seven = exp::fast(Design::Tfet7T.params(0.8));
    let mut g = c.benchmark_group("fig12_margin_vs_vdd");
    g.sample_size(10);
    g.bench_function("drnm_proposed_with_ra", |b| {
        b.iter(|| {
            black_box(
                read_metrics(&proposed, Design::Proposed.read_assist())
                    .unwrap()
                    .drnm,
            )
        })
    });
    g.bench_function("drnm_7t_decoupled", |b| {
        b.iter(|| black_box(read_metrics(&seven, None).unwrap().drnm))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
