//! Ablation — temperature. The paper's leakage argument at 300 K, extended
//! over the operating-temperature range: MOSFET hold power explodes with
//! its thermionic subthreshold mechanism while the inward-TFET cell stays
//! nearly flat, so the 6–7-order gap the paper reports *widens* when hot —
//! exactly where cache leakage matters most.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::{sci, Table};
use tfet_sram::metrics::static_power;
use tfet_sram::prelude::*;

fn sweep() -> Table {
    let mut t = Table::new(
        "Ablation A4",
        "hold static power vs temperature (VDD = 0.8 V)",
        &["temp_K", "tfet_W", "cmos_W", "gap_orders"],
    );
    for temp in [250.0, 300.0, 350.0, 400.0] {
        let tfet = static_power(
            &CellParams::tfet6t(AccessConfig::InwardP)
                .with_beta(0.6)
                .with_temperature(temp),
        )
        .expect("tfet hold");
        let cmos = static_power(&CellParams::cmos6t().with_beta(1.5).with_temperature(temp))
            .expect("cmos hold");
        t.push_row(vec![
            format!("{temp:.0}"),
            sci(tfet),
            sci(cmos),
            format!("{:.1}", (cmos / tfet).log10()),
        ]);
    }
    t.note("band-to-band tunneling is temperature-flat; thermionic subthreshold is not — the TFET's leakage advantage grows with temperature");
    t
}

fn bench(c: &mut Criterion) {
    println!("{}", sweep().render());

    let hot = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_temperature(400.0);
    let mut g = c.benchmark_group("ablation_temperature");
    g.bench_function("hold_dc_op_at_400k", |b| {
        b.iter(|| black_box(static_power(&hot).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
