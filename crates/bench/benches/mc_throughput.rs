//! Monte-Carlo throughput: samples/second for the WL_crit study at n = 256.
//!
//! Compares the study's configurations to the serial analytic baseline:
//!
//! * `serial_analytic` — one worker, analytic device models (the original
//!   code path before the parallel engine, modulo the reusable workspaces);
//! * `serial_cached_lut` — one worker, devices served from the shared
//!   compiled-LUT corner cache;
//! * `default_threads` — the machine-default worker count with cached LUTs
//!   (the configuration sweeps and studies actually use).
//!
//! The headline ratio (`serial_analytic` time / `default_threads` time) is
//! the speedup recorded in EXPERIMENTS.md.
//!
//! PR-6 adds a counter-based dense-vs-sparse comparison on the same study:
//! the deterministic `(factorizations + device evaluations)` cost of the
//! full n = 256 run under each linear-solve strategy, asserted in the
//! sparse engine's favour and recorded in the run report under
//! `bench.dense.*` / `bench.sparse.*`. (The margin was 2.02× when PR-6
//! landed; the PR-7 stall-guard relaxation cut sparse refactorizations
//! 58 % but pays for it in extra reused-factor Newton iterations — more
//! device evaluations — so this metric's honest floor today is 1.3×.
//! Absolute per-bench cost counters are pinned much tighter by
//! `tfet-bench history check` against `results/history/` baselines.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments::fast;
use tfet_bench::Table;
use tfet_sram::montecarlo::{mc_wl_crit_with, McConfig};
use tfet_sram::prelude::*;

const N: usize = 256;

fn base() -> CellParams {
    fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6))
}

/// The study's deterministic solver-cost counters under `strategy`:
/// `(jac_refactored, jac_reused, device_evals, devices_bypassed)`, measured
/// single-threaded on a clean tracing registry.
fn strategy_counters(strategy: SolverStrategy) -> (u64, u64, u64, u64) {
    let mut p = base().with_lut_devices();
    p.sim.solver = strategy;
    tfet_obs::reset();
    tfet_obs::enable();
    black_box(mc_wl_crit_with(&p, None, N, McConfig::new(7).with_threads(1)).unwrap());
    tfet_obs::disable();
    let c = tfet_obs::RunReport::capture().counters;
    let get = |k: &str| c.get(k).copied().unwrap_or(0);
    (
        get("newton.jac_refactored"),
        get("newton.jac_reused"),
        get("devices.evals"),
        get("devices.bypassed"),
    )
}

fn solver_cost_table() -> (Table, u64, u64) {
    let mut t = Table::new(
        "MC solver cost",
        "dense vs sparse (factorizations + device evals) for the n = 256 WL_crit study",
        &[
            "strategy",
            "jac_refactored",
            "jac_reused",
            "device_evals",
            "devices_bypassed",
            "cost",
        ],
    );
    let dense = strategy_counters(SolverStrategy::Dense);
    let sparse = strategy_counters(SolverStrategy::Sparse);
    let cost = |(refac, _, evals, _): (u64, u64, u64, u64)| refac + evals;
    for (label, s) in [("dense", dense), ("sparse", sparse)] {
        t.push_row(vec![
            label.to_string(),
            s.0.to_string(),
            s.1.to_string(),
            s.2.to_string(),
            s.3.to_string(),
            cost(s).to_string(),
        ]);
    }
    let (dc, sc) = (cost(dense), cost(sparse));
    t.note(format!(
        "speedup: dense/sparse cost = {:.2}x (counter-based, machine-independent)",
        dc as f64 / sc as f64
    ));
    (t, dc, sc)
}

fn bench(c: &mut Criterion) {
    let (table, dense_cost, sparse_cost) = solver_cost_table();
    println!("{}", table.render());
    // Acceptance floor: 1.3x. PR-6 measured 2.02x; the PR-7 stall-guard
    // inf-init then traded refactorizations (-58 %) for extra
    // reused-factor iterations (+61 % device evals) — a win at array
    // scale, a net cost increase on this single-cell metric that the
    // never-executed >= 2x assert missed. The ratio stays as a coarse
    // sanity floor; absolute drift is caught by `tfet-bench history
    // check`, which is run (not just compiled) by scripts/check.sh.
    assert!(
        10 * dense_cost >= 13 * sparse_cost,
        "acceptance: sparse must cut (factorizations + device evals) >= 1.3x on the \
         MC study (dense {dense_cost} vs sparse {sparse_cost})"
    );

    // One traced representative run (the default-thread LUT configuration)
    // emits the versioned RunReport before any timing loop; the timed
    // iterations below run with tracing disabled. The dense-vs-sparse cost
    // counters measured above ride along under the `bench.*` namespace.
    let traced = base().with_lut_devices();
    tfet_bench::write_bench_report("mc_throughput", || {
        black_box(mc_wl_crit_with(&traced, None, N, McConfig::new(7)).unwrap());
        tfet_obs::counter("bench.dense.solver_cost", dense_cost);
        tfet_obs::counter("bench.sparse.solver_cost", sparse_cost);
        tfet_obs::counter(
            "bench.sparse_speedup_pct",
            (100 * dense_cost) / sparse_cost.max(1),
        );
    });

    let mut g = c.benchmark_group("mc_throughput");
    g.sample_size(10);

    let analytic = base();
    g.bench_function("wl_crit_n256_serial_analytic", |b| {
        b.iter(|| {
            black_box(
                mc_wl_crit_with(&analytic, None, N, McConfig::new(7).with_threads(1)).unwrap(),
            )
        })
    });

    let lut = base().with_lut_devices();
    g.bench_function("wl_crit_n256_serial_cached_lut", |b| {
        b.iter(|| {
            black_box(mc_wl_crit_with(&lut, None, N, McConfig::new(7).with_threads(1)).unwrap())
        })
    });

    g.bench_function("wl_crit_n256_default_threads", |b| {
        b.iter(|| black_box(mc_wl_crit_with(&lut, None, N, McConfig::new(7)).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
