//! Monte-Carlo throughput: samples/second for the WL_crit study at n = 256.
//!
//! Compares the study's configurations to the serial analytic baseline:
//!
//! * `serial_analytic` — one worker, analytic device models (the original
//!   code path before the parallel engine, modulo the reusable workspaces);
//! * `serial_cached_lut` — one worker, devices served from the shared
//!   compiled-LUT corner cache;
//! * `default_threads` — the machine-default worker count with cached LUTs
//!   (the configuration sweeps and studies actually use).
//!
//! The headline ratio (`serial_analytic` time / `default_threads` time) is
//! the speedup recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments::fast;
use tfet_sram::montecarlo::{mc_wl_crit_with, McConfig};
use tfet_sram::prelude::*;

const N: usize = 256;

fn base() -> CellParams {
    fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6))
}

fn bench(c: &mut Criterion) {
    // One traced representative run (the default-thread LUT configuration)
    // emits the versioned RunReport before any timing loop; the timed
    // iterations below run with tracing disabled.
    let traced = base().with_lut_devices();
    tfet_bench::write_bench_report("mc_throughput", || {
        black_box(mc_wl_crit_with(&traced, None, N, McConfig::new(7)).unwrap());
    });

    let mut g = c.benchmark_group("mc_throughput");
    g.sample_size(10);

    let analytic = base();
    g.bench_function("wl_crit_n256_serial_analytic", |b| {
        b.iter(|| {
            black_box(
                mc_wl_crit_with(&analytic, None, N, McConfig::new(7).with_threads(1)).unwrap(),
            )
        })
    });

    let lut = base().with_lut_devices();
    g.bench_function("wl_crit_n256_serial_cached_lut", |b| {
        b.iter(|| {
            black_box(mc_wl_crit_with(&lut, None, N, McConfig::new(7).with_threads(1)).unwrap())
        })
    });

    g.bench_function("wl_crit_n256_default_threads", |b| {
        b.iter(|| black_box(mc_wl_crit_with(&lut, None, N, McConfig::new(7)).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
