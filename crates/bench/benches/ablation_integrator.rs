//! Ablation — transient integration. Sweeps the time step and compares
//! backward Euler against trapezoidal on the DRNM metric, validating that
//! the 1–2 ps production settings sit on the convergence plateau.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::{mv, Table};
use tfet_sram::metrics::read_metrics;
use tfet_sram::ops::run_read;
use tfet_sram::prelude::*;

fn sweep() -> Table {
    let mut t = Table::new(
        "Ablation A2",
        "time-step convergence of the DRNM metric (backward Euler)",
        &["dt_ps", "drnm_mV", "delta_vs_finest_mV"],
    );
    let mut results = Vec::new();
    for dt_ps in [8.0, 4.0, 2.0, 1.0, 0.5] {
        let mut p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
        // This ablation studies *fixed-step* convergence in dt; adaptive
        // stepping would re-discretize each run and hide the dt axis.
        p.sim.stepping = SteppingMode::Fixed;
        p.sim.dt = dt_ps * 1e-12;
        let drnm = read_metrics(&p, Some(ReadAssist::GndLowering))
            .expect("read")
            .drnm;
        results.push((dt_ps, drnm));
    }
    let finest = results.last().expect("nonempty").1;
    for (dt_ps, drnm) in &results {
        t.push_row(vec![
            format!("{dt_ps:.1}"),
            mv(*drnm),
            format!("{:+.2}", (drnm - finest) * 1e3),
        ]);
    }
    t.note("production settings (1-2 ps) sit within a fraction of a mV of the finest grid");
    t
}

fn bench(c: &mut Criterion) {
    println!("{}", sweep().render());

    let mut p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    p.sim.stepping = SteppingMode::Fixed;
    p.sim.dt = 2e-12;
    let mut g = c.benchmark_group("ablation_integrator");
    g.sample_size(10);
    g.bench_function("read_transient_be_2ps", |b| {
        b.iter(|| black_box(run_read(&p, None).unwrap().drnm()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
