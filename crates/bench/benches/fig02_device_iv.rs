//! Fig. 2 — TFET I-V characteristics (forward and reverse).
//!
//! Regenerates both panels, then times the device-model kernels that every
//! downstream experiment is built on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_devices::model::DeviceModel;
use tfet_devices::{LutDevice, NTfet};

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig02a().render());
    println!("{}", exp::fig02b().render());

    let analytic = NTfet::nominal();
    let lut = LutDevice::compile_default(NTfet::nominal());

    let mut g = c.benchmark_group("fig02_device_iv");
    g.bench_function("analytic_ids_forward", |b| {
        b.iter(|| black_box(analytic.ids_per_um(black_box(0.8), black_box(0.8), 0.0)))
    });
    g.bench_function("analytic_ids_reverse", |b| {
        b.iter(|| black_box(analytic.ids_per_um(black_box(0.8), black_box(-0.8), 0.0)))
    });
    g.bench_function("lut_ids", |b| {
        b.iter(|| black_box(lut.ids_per_um(black_box(0.8), black_box(0.8), 0.0)))
    });
    g.bench_function("transfer_sweep_101pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..=100 {
                acc += analytic.ids_per_um(k as f64 * 0.01, 1.0, 0.0);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
