//! Fig. 9 — Monte-Carlo WL_crit under write-assist sizing (β = 2) with
//! ±5 % gate-oxide-thickness variation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::montecarlo::mc_wl_crit;
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", exp::fig09(40, 2011).render());

    let params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
    let mut g = c.benchmark_group("fig09_mc_write");
    g.sample_size(10);
    g.bench_function("mc_wl_crit_4_samples", |b| {
        b.iter(|| black_box(mc_wl_crit(&params, Some(WriteAssist::GndRaising), 4, 7).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
