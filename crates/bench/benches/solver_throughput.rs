//! Dense vs sparse linear-solve cost on the WL_crit extraction workload.
//!
//! The PR-6 sparse engine buys its speed from three places: symbolic
//! analysis done once per topology, modified-Newton factorization reuse,
//! and device-evaluation bypass. This bench measures all three against the
//! dense reference on the same deterministic workload — one seeded WL_crit
//! search at β = 0.6 — using the always-on [`SolveStats`] counters, which
//! are machine-independent, and cross-checks that both strategies land on
//! the same critical pulse width.
//!
//! The *cost* column is `jac_refactored + device_evals`: one unit per
//! matrix factorization plus one per transistor model evaluation, the two
//! operations that dominate a Newton iteration. The headline ratio
//! (dense cost / sparse cost) was PR-6's acceptance number (2.19× then;
//! the PR-7 reuse-policy change compressed it — see `check_acceptance`);
//! absolute per-bench counters are regression-pinned by
//! `tfet-bench history check`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments::fast;
use tfet_bench::Table;
use tfet_sram::metrics::{wl_crit_seeded, WlCritRun};
use tfet_sram::prelude::*;

fn cell(strategy: SolverStrategy) -> CellParams {
    let mut p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    p.sim.solver = strategy;
    p
}

fn run(p: &CellParams) -> WlCritRun {
    wl_crit_seeded(p, None, None).expect("β=0.6 inward-p extracts")
}

fn cost(r: &WlCritRun) -> u64 {
    r.effort.jac_refactored + r.effort.device_evals
}

fn solver_table() -> (Table, WlCritRun, WlCritRun) {
    let mut t = Table::new(
        "solver cost",
        "dense vs sparse per WL_crit extraction at beta = 0.6",
        &[
            "config",
            "newton_iters",
            "jac_refactored",
            "jac_reused",
            "device_evals",
            "devices_bypassed",
            "cost",
            "wl_crit_ps",
        ],
    );
    let dense = run(&cell(SolverStrategy::Dense));
    let sparse = run(&cell(SolverStrategy::Sparse));
    for (label, r) in [("dense", &dense), ("sparse", &sparse)] {
        t.push_row(vec![
            label.to_string(),
            r.effort.newton_iters.to_string(),
            r.effort.jac_refactored.to_string(),
            r.effort.jac_reused.to_string(),
            r.effort.device_evals.to_string(),
            r.effort.devices_bypassed.to_string(),
            cost(r).to_string(),
            r.value
                .as_finite()
                .map(|w| format!("{:.1}", w * 1e12))
                .unwrap_or_else(|| "inf".into()),
        ]);
    }
    let speedup = cost(&dense) as f64 / cost(&sparse) as f64;
    t.note(format!(
        "headline: dense/sparse (factorizations + device evals) = {speedup:.2}x"
    ));
    (t, dense, sparse)
}

fn check_acceptance(dense: &WlCritRun, sparse: &WlCritRun) {
    // Both strategies answer the same physics question: WL_crit must agree
    // to the bisection tolerance.
    let tol = cell(SolverStrategy::Sparse).sim.pulse_tol;
    let (wd, ws) = (
        dense.value.as_finite().expect("dense WL_crit finite"),
        sparse.value.as_finite().expect("sparse WL_crit finite"),
    );
    assert!(
        (wd - ws).abs() <= 2.0 * tol,
        "acceptance: sparse WL_crit ({ws:e}) must match dense ({wd:e})"
    );
    // Coarse sanity floor: sparse must still beat dense outright on this
    // metric. The PR-6 margin here was 2.19x; the PR-7 stall-guard
    // inf-init traded refactorizations for extra reused-factor iterations
    // (and their device evals), which wins at array scale but compresses
    // this single-cell extraction to ~1.1x — a drift the never-executed
    // >= 2x assert missed. Absolute cost counters are pinned per bench by
    // `tfet-bench history check` in scripts/check.sh.
    assert!(
        cost(dense) > cost(sparse),
        "acceptance: sparse must cost less than dense in \
         (factorizations + device evals) (dense {} vs sparse {})",
        cost(dense),
        cost(sparse)
    );
}

fn bench(c: &mut Criterion) {
    let (table, dense, sparse) = solver_table();
    println!("{}", table.render());
    check_acceptance(&dense, &sparse);

    let mut g = c.benchmark_group("solver_throughput");
    g.sample_size(10);

    let dense = cell(SolverStrategy::Dense);
    g.bench_function("wl_crit_dense", |b| b.iter(|| black_box(run(&dense).value)));

    let sparse = cell(SolverStrategy::Sparse);
    g.bench_function("wl_crit_sparse", |b| {
        b.iter(|| black_box(run(&sparse).value))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
