//! Fig. 8 — all eight techniques in the (DRNM, WL_crit) plane; the paper's
//! technique-selection figure (GND-lowering RA wins).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_sram::explore::{corner_score, ra_tradeoff};
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        exp::fig08(&[1.2, 1.5, 2.0, 2.5], &[0.4, 0.5, 0.6, 0.8]).render()
    );

    let base = exp::fast(CellParams::tfet6t(AccessConfig::InwardP));
    let mut g = c.benchmark_group("fig08_wa_ra_tradeoff");
    g.sample_size(10);
    g.bench_function("ra_tradeoff_curve_one_beta", |b| {
        b.iter(|| {
            let curve = ra_tradeoff(&base, ReadAssist::GndLowering, &[0.6]).unwrap();
            black_box(corner_score(&curve, 1e-9, 0.1))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
