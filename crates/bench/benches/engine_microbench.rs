//! Microbenchmarks of the simulation engine itself: dense LU, DC operating
//! point, and transient step rate on the 6T cell. These are the kernels
//! whose cost multiplies through every experiment in the suite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_circuit::transient::InitialState;
use tfet_circuit::TransientSpec;
use tfet_numerics::matrix::Lu;
use tfet_numerics::Matrix;
use tfet_sram::ops::hold_setup;
use tfet_sram::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");

    // Dense LU at typical MNA size (13 unknowns for the 6T cell).
    let n = 13;
    let mut a = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                a[(i, j)] = 0.1 / (1.0 + (i as f64 - j as f64).abs());
            }
        }
    }
    let b_vec = vec![1.0; n];
    g.bench_function("lu_factor_solve_13x13", |bch| {
        bch.iter(|| {
            let mut lu = Lu::factorize(black_box(&a)).unwrap();
            black_box(lu.solve(&b_vec))
        })
    });

    // DC operating point of the full 6T TFET cell in hold.
    let params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    let hold = hold_setup(&params).unwrap();
    g.bench_function("dc_op_6t_hold", |bch| {
        bch.iter(|| black_box(hold.circuit.dc_op_with_guess(&hold.guess).unwrap()))
    });

    // Transient step rate: 250 fixed steps of the hold circuit.
    let uic = || {
        InitialState::Uic(vec![
            (hold.nodes.q, 0.8),
            (hold.nodes.bl, 0.8),
            (hold.nodes.blb, 0.8),
            (hold.nodes.wl, 0.8),
            (hold.nodes.vdd, 0.8),
        ])
    };
    g.bench_function("transient_250_steps_6t", |bch| {
        bch.iter(|| {
            black_box(
                hold.circuit
                    .transient(&TransientSpec::fixed(0.5e-9, 2e-12), &uic())
                    .unwrap(),
            )
        })
    });

    // The same horizon under adaptive LTE control: the quiescent hold
    // circuit should coast at dt_max.
    g.bench_function("transient_adaptive_6t_hold", |bch| {
        bch.iter(|| {
            black_box(
                hold.circuit
                    .transient(&TransientSpec::new(0.5e-9, 2e-12), &uic())
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
