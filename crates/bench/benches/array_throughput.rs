//! Array-engine throughput: the 64×64 write transient that motivates the
//! fast-SPICE engine, measured across the two solver knobs it ships:
//!
//! * **quiescent-partition latency** — `DeviceLatency::On` (dormant cells
//!   skip device evaluation and Jacobian re-stamping) vs `Off` (the
//!   full-evaluation baseline);
//! * **parallel device evaluation** — 1 vs 8 assembly threads, which by
//!   construction changes wall-clock only (results are merged in fixed
//!   netlist order and asserted bit-identical here).
//!
//! The headline acceptance rides along as hard asserts: the latency tier
//! must cut device evaluations ≥ 5× on the 64×64 write, and the 8-thread
//! run must reproduce the 1-thread finals exactly. One traced pass records
//! the deterministic counters to `results/BENCH_array.json`; the Criterion
//! group times an 8×8 write per configuration (the 64×64 baseline run is
//! minutes-scale with full evaluation — counters, not wall-clock, are its
//! comparison currency).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_circuit::set_assembly_threads;
use tfet_sram::array_netlist::{ArrayNetlist, ArraySpec, ArrayWrite};
use tfet_sram::prelude::*;

fn array_cell() -> CellParams {
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    cell.sim.dt = 4e-12;
    cell
}

fn spec(n: usize, latency: DeviceLatency) -> ArraySpec {
    ArraySpec::new(n, n, array_cell()).with_latency(latency)
}

fn write_once(a: &mut ArrayNetlist) -> ArrayWrite {
    a.write_transient(1, 2, true, 1.5e-9).expect("array write")
}

fn bench(c: &mut Criterion) {
    // The traced 64×64 pass: latency on at 1 and 8 threads (bit-identity
    // check), then the full-evaluation baseline (serial by construction).
    let mut runs: Option<(ArrayWrite, ArrayWrite, ArrayWrite)> = None;
    tfet_bench::write_bench_report("array", || {
        // Fresh netlist per thread count: a repeat write on a warm netlist
        // re-converges from cached linearizations and lands within Newton
        // tolerance but not bit-exactly, so cold-vs-cold is the only fair
        // determinism comparison.
        set_assembly_threads(1);
        let mut on = ArrayNetlist::build(spec(64, DeviceLatency::On)).expect("build 64x64");
        let w_on_t1 = write_once(&mut on);
        set_assembly_threads(8);
        let mut on8 = ArrayNetlist::build(spec(64, DeviceLatency::On)).expect("build 64x64");
        let w_on_t8 = write_once(&mut on8);
        set_assembly_threads(0);
        let mut off = ArrayNetlist::build(spec(64, DeviceLatency::Off)).expect("build 64x64");
        let w_off = write_once(&mut off);

        tfet_obs::counter("bench.array.on_t1.device_evals", w_on_t1.stats.device_evals);
        tfet_obs::counter(
            "bench.array.on_t1.devices_dormant",
            w_on_t1.stats.devices_dormant,
        );
        tfet_obs::counter(
            "bench.array.on_t1.cells_refreshed",
            w_on_t1.stats.cells_refreshed,
        );
        tfet_obs::counter("bench.array.on_t1.newton_iters", w_on_t1.stats.newton_iters);
        tfet_obs::counter("bench.array.on_t8.device_evals", w_on_t8.stats.device_evals);
        tfet_obs::counter("bench.array.off.device_evals", w_off.stats.device_evals);
        tfet_obs::counter("bench.array.off.newton_iters", w_off.stats.newton_iters);
        tfet_obs::counter(
            "bench.array.eval_savings_x100",
            (100 * w_off.stats.device_evals) / w_on_t1.stats.device_evals.max(1),
        );
        runs = Some((w_on_t1, w_on_t8, w_off));
    });
    let (w_on_t1, w_on_t8, w_off) = runs.expect("traced pass ran");

    assert!(
        w_on_t1.success && w_off.success,
        "the 64x64 write must land"
    );
    let ratio = w_off.stats.device_evals as f64 / w_on_t1.stats.device_evals as f64;
    assert!(
        ratio >= 5.0,
        "acceptance: latency tier must cut device evals >= 5x on the 64x64 write \
         (off {} vs on {}, {ratio:.2}x)",
        w_off.stats.device_evals,
        w_on_t1.stats.device_evals
    );
    assert_eq!(
        w_on_t1.finals, w_on_t8.finals,
        "8-thread evaluation must be bit-identical to 1-thread"
    );
    assert_eq!(
        w_on_t1.stats.device_evals, w_on_t8.stats.device_evals,
        "thread count must not change which devices are evaluated"
    );
    println!(
        "64x64 write: latency-on {} evals ({} dormant skips), latency-off {} evals -> {ratio:.1}x",
        w_on_t1.stats.device_evals, w_on_t1.stats.devices_dormant, w_off.stats.device_evals
    );

    // Wall-clock per configuration at 8×8 (seconds-scale per iteration).
    let mut g = c.benchmark_group("array_throughput");
    g.sample_size(10);
    for (name, latency, threads) in [
        ("write_8x8_latency_on_t1", DeviceLatency::On, 1usize),
        ("write_8x8_latency_on_t8", DeviceLatency::On, 8),
        ("write_8x8_latency_off_t1", DeviceLatency::Off, 1),
    ] {
        let mut a = ArrayNetlist::build(spec(8, latency)).expect("build 8x8");
        set_assembly_threads(threads);
        g.bench_function(name, |b| b.iter(|| black_box(write_once(&mut a))));
        set_assembly_threads(0);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
