//! WL_crit extraction throughput: the cost of one critical-pulse-width
//! search under each stepping policy.
//!
//! The 2×2 grid {fixed, adaptive} × {early exit off, on} plus the seeded
//! adaptive search measures the PR's three effort levers independently:
//!
//! * adaptive LTE stepping — fewer, larger transient steps on plateaus;
//! * event-driven early exit — flip/no-flip transients stop when decided;
//! * bracket seeding — a hint from a neighbouring design point shrinks the
//!   bisection bracket (the sweep/Monte-Carlo fast path).
//!
//! Effort is reported in *Newton solves* from the always-on
//! [`SolveStats`] counters — deterministic and machine-independent, unlike
//! wall-clock. The headline ratio (fixed seed path / adaptive with early
//! exit) is asserted ≥ 3× here and recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments::fast;
use tfet_bench::Table;
use tfet_sram::metrics::{wl_crit_compiled, wl_crit_seeded, WlCritRun};
use tfet_sram::prelude::*;

fn cell(stepping: SteppingMode, early_exit: bool) -> CellParams {
    let mut p = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    p.sim.stepping = stepping;
    p.sim.early_exit = early_exit;
    p
}

fn run(p: &CellParams, hint: Option<f64>) -> WlCritRun {
    wl_crit_seeded(p, None, hint).expect("β=0.6 inward-p extracts")
}

fn effort_table() -> Table {
    let mut t = Table::new(
        "WL_crit effort",
        "solver effort per extraction at beta = 0.6 (2 ps / 8 ps settings)",
        &[
            "config",
            "oracle_calls",
            "builds",
            "runs",
            "newton_solves",
            "newton_iters",
            "jac_refac",
            "dev_evals",
            "steps_acc",
            "steps_rej",
            "wl_crit_ps",
        ],
    );
    let fixed_off = cell(SteppingMode::Fixed, false);
    let configs = [
        ("fixed, no exit (seed path)", fixed_off.clone(), None),
        ("fixed, early exit", cell(SteppingMode::Fixed, true), None),
        (
            "adaptive, no exit",
            cell(SteppingMode::Adaptive, false),
            None,
        ),
        (
            "adaptive, early exit",
            cell(SteppingMode::Adaptive, true),
            None,
        ),
    ];
    let mut runs = Vec::new();
    for (label, p, hint) in &configs {
        let r = run(p, *hint);
        push_run(&mut t, label, &r);
        runs.push(r);
    }
    // The seeded fast path: hint from the (identical) previous point, as a
    // sweep neighbour or the Monte-Carlo nominal would supply.
    let seeded_p = cell(SteppingMode::Adaptive, true);
    let hint = runs[3].value.as_finite();
    let seeded = run(&seeded_p, hint);
    push_run(&mut t, "adaptive, early exit, seeded", &seeded);

    // The dense cross-check: same search under the legacy dense solver.
    // WL_crit must agree to the bisection tolerance, and the sparse default
    // must not cost more factorizations + device evals than dense.
    let mut dense_p = cell(SteppingMode::Adaptive, true);
    dense_p.sim.solver = SolverStrategy::Dense;
    let dense = run(&dense_p, None);
    push_run(&mut t, "adaptive, early exit, dense solver", &dense);
    let cost = |r: &WlCritRun| r.effort.jac_refactored + r.effort.device_evals;
    t.note(format!(
        "solver: dense/sparse (factorizations + device evals) = {:.2}x",
        cost(&dense) as f64 / cost(&runs[3]) as f64
    ));
    let tol = seeded_p.sim.pulse_tol;
    let (wd, ws) = (
        dense.value.as_finite().expect("dense WL_crit finite"),
        runs[3].value.as_finite().expect("sparse WL_crit finite"),
    );
    assert!(
        (wd - ws).abs() <= 2.0 * tol,
        "acceptance: dense WL_crit ({wd:e}) must match sparse ({ws:e})"
    );
    assert!(
        cost(&dense) >= cost(&runs[3]),
        "acceptance: the sparse default must not cost more than dense \
         ({} vs {})",
        cost(&runs[3]),
        cost(&dense)
    );

    let baseline = runs[0].effort.newton_solves;
    let adaptive = runs[3].effort.newton_solves;
    let ratio = baseline as f64 / adaptive as f64;
    t.note(format!(
        "headline: fixed seed path / adaptive+exit = {ratio:.2}x fewer Newton solves"
    ));
    t.note(format!(
        "seeded on top: {:.2}x fewer solves than the seed path",
        baseline as f64 / seeded.effort.newton_solves as f64
    ));
    assert!(
        adaptive * 3 <= baseline,
        "acceptance: adaptive+exit must cut Newton solves >= 3x ({baseline} vs {adaptive})"
    );
    t
}

/// A seeded β-sweep on one compiled write experiment: compile once at the
/// first grid point, then retarget with `bind_cell` and chain each point's
/// answer as the next bisection hint. The build/run counters prove the
/// compiled layer amortises circuit construction across the whole sweep.
fn compiled_sweep_table() -> Table {
    let mut t = Table::new(
        "compiled seeded beta sweep",
        "one WriteExperiment reused across the grid (adaptive, early exit)",
        &["beta", "builds", "runs", "newton_solves", "wl_crit_ps"],
    );
    let betas = [0.4, 0.6, 0.8, 1.0];
    let mut exp = None;
    let mut hint = None;
    let mut wl_at_06 = None;
    let (mut total_builds, mut total_runs) = (0u64, 0u64);
    for &beta in &betas {
        let p = cell(SteppingMode::Adaptive, true).with_beta(beta);
        let e = match exp.as_mut() {
            Some(e) => {
                tfet_sram::ops::WriteExperiment::bind_cell(e, &p).expect("same topology");
                e
            }
            None => exp.insert(
                tfet_sram::ops::WriteExperiment::compile(&p, None).expect("grid point compiles"),
            ),
        };
        let r = wl_crit_compiled(e, hint).expect("grid point extracts");
        hint = r.value.as_finite();
        if beta == 0.6 {
            wl_at_06 = r.value.as_finite();
        }
        total_builds += r.effort.circuit_builds;
        total_runs += r.effort.runs;
        t.push_row(vec![
            format!("{beta:.1}"),
            r.effort.circuit_builds.to_string(),
            r.effort.runs.to_string(),
            r.effort.newton_solves.to_string(),
            r.value
                .as_finite()
                .map(|w| format!("{:.1}", w * 1e12))
                .unwrap_or_else(|| "inf".into()),
        ]);
    }
    t.note(format!(
        "sweep total: {total_builds} builds for {total_runs} transient runs"
    ));
    assert!(
        total_runs >= 5 * total_builds,
        "acceptance: compiled sweep must run >= 5x more transients than builds \
         ({total_runs} runs vs {total_builds} builds)"
    );
    // The compiled, seeded path lands on the same answer as a cold search.
    let cold = run(&cell(SteppingMode::Adaptive, true), None);
    let tol = cell(SteppingMode::Adaptive, true).sim.pulse_tol;
    let (a, b) = (
        cold.value.as_finite().expect("beta=0.6 is finite"),
        wl_at_06.expect("beta=0.6 is finite in the sweep"),
    );
    assert!(
        (a - b).abs() <= 2.0 * tol,
        "acceptance: seeded sweep WL_crit at beta=0.6 ({b:e}) must match cold ({a:e})"
    );
    t
}

fn push_run(t: &mut Table, label: &str, r: &WlCritRun) {
    t.push_row(vec![
        label.to_string(),
        r.oracle_calls.to_string(),
        r.effort.circuit_builds.to_string(),
        r.effort.runs.to_string(),
        r.effort.newton_solves.to_string(),
        r.effort.newton_iters.to_string(),
        r.effort.jac_refactored.to_string(),
        r.effort.device_evals.to_string(),
        r.effort.accepted_steps.to_string(),
        r.effort.rejected_steps.to_string(),
        r.value
            .as_finite()
            .map(|w| format!("{:.1}", w * 1e12))
            .unwrap_or_else(|| "inf".into()),
    ]);
}

fn bench(c: &mut Criterion) {
    println!("{}", effort_table().render());
    println!("{}", compiled_sweep_table().render());

    // One traced cold + seeded search pair emits the RunReport (bisection
    // bracket trajectories, Newton histograms) before the timing loops.
    tfet_bench::write_bench_report("wl_crit_throughput", || {
        let p = cell(SteppingMode::Adaptive, true);
        let hint = run(&p, None).value.as_finite();
        black_box(run(&p, hint).value);
    });

    let mut g = c.benchmark_group("wl_crit_throughput");
    g.sample_size(10);

    let fixed = cell(SteppingMode::Fixed, false);
    g.bench_function("fixed_no_exit", |b| {
        b.iter(|| black_box(run(&fixed, None).value))
    });

    let adaptive = cell(SteppingMode::Adaptive, true);
    g.bench_function("adaptive_early_exit", |b| {
        b.iter(|| black_box(run(&adaptive, None).value))
    });

    let hint = run(&adaptive, None).value.as_finite();
    g.bench_function("adaptive_early_exit_seeded", |b| {
        b.iter(|| black_box(run(&adaptive, hint).value))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
