//! Extension metrics — static-vs-dynamic margins and data-retention
//! voltage, the two classical measurements the workspace adds around the
//! paper's own metrics.
//!
//! The static-vs-dynamic comparison quantifies the paper's §3 methodology
//! argument: static read SNM is systematically more pessimistic than the
//! dynamic DRNM on the same cell, because a real read disturb only lasts as
//! long as the wordline pulse.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::{mv, Table};
use tfet_sram::metrics::{data_retention_voltage, read_metrics};
use tfet_sram::prelude::*;
use tfet_sram::snm::{static_noise_margin, SnmCondition};

fn static_vs_dynamic() -> Table {
    let mut t = Table::new(
        "Ablation A5",
        "static read SNM vs dynamic DRNM across beta (no assists)",
        &[
            "beta",
            "hold_snm_mV",
            "read_snm_mV",
            "drnm_mV",
            "dynamic_advantage_mV",
        ],
    );
    for beta in [0.6, 1.0, 1.5, 2.0] {
        let mut p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(beta);
        p.sim.dt = 2e-12;
        let hold = static_noise_margin(&p, SnmCondition::Hold).expect("hold SNM");
        let read = static_noise_margin(&p, SnmCondition::Read).expect("read SNM");
        let drnm = read_metrics(&p, None).expect("read").drnm;
        t.push_row(vec![
            format!("{beta:.1}"),
            mv(hold),
            mv(read),
            mv(drnm),
            mv(drnm - read),
        ]);
    }
    t.note("the paper's §3 argument: static margins understate read stability; the dynamic margin credits the finite disturb duration");
    t
}

fn retention() -> Table {
    let mut t = Table::new(
        "Ablation A6",
        "data-retention voltage (standby VDD floor)",
        &["cell", "drv_V"],
    );
    for (label, params) in [
        (
            "6T inpTFET beta=0.6",
            CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6),
        ),
        ("6T CMOS beta=1.5", CellParams::cmos6t().with_beta(1.5)),
    ] {
        let drv = data_retention_voltage(&params).expect("DRV");
        t.push_row(vec![
            label.to_string(),
            drv.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "< 0.050".to_string()),
        ]);
    }
    t.note("standby-VDD scaling multiplies the paper's static-power savings; hold power falls superlinearly toward the DRV");
    t
}

fn bench(c: &mut Criterion) {
    println!("{}", static_vs_dynamic().render());
    println!("{}", retention().render());

    let p = CellParams::tfet6t(AccessConfig::InwardP).with_beta(1.0);
    let mut g = c.benchmark_group("extension_metrics");
    g.sample_size(10);
    g.bench_function("hold_snm_butterfly", |b| {
        b.iter(|| black_box(static_noise_margin(&p, SnmCondition::Hold).unwrap()))
    });
    g.bench_function("data_retention_voltage", |b| {
        b.iter(|| black_box(data_retention_voltage(&p).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
