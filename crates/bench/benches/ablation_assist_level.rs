//! Ablation — assist strength. The paper fixes every technique at 30 % of
//! V_DD "for the sake of fair comparison"; this bench sweeps the level from
//! 10 % to 50 % and shows how the selected techniques scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments as exp;
use tfet_bench::{mv, ps, Table};
use tfet_sram::metrics::{read_metrics, wl_crit, WlCrit};
use tfet_sram::prelude::*;

fn sweep() -> Table {
    let mut t = Table::new(
        "Ablation A3",
        "assist level sweep (fraction of VDD)",
        &["fraction", "drnm_gnd_lower_mV", "wlcrit_gnd_raise_ps"],
    );
    for frac in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut ra_cell = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
        ra_cell.sim.assist_fraction = frac;
        let drnm = read_metrics(&ra_cell, Some(ReadAssist::GndLowering))
            .expect("read")
            .drnm;
        let mut wa_cell = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
        wa_cell.sim.assist_fraction = frac;
        wa_cell.sim.max_pulse = 12e-9;
        let wl = match wl_crit(&wa_cell, Some(WriteAssist::GndRaising)).expect("wl") {
            WlCrit::Finite(w) => ps(w),
            WlCrit::Infinite => "inf".to_string(),
            WlCrit::Unbracketable => "unbracketable".to_string(),
        };
        t.push_row(vec![format!("{frac:.1}"), mv(drnm), wl]);
    }
    t.note("expected monotonicity: more assist -> larger DRNM, smaller WL_crit");
    t
}

fn bench(c: &mut Criterion) {
    println!("{}", sweep().render());

    let mut params = exp::fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    params.sim.assist_fraction = 0.5;
    let mut g = c.benchmark_group("ablation_assist_level");
    g.sample_size(10);
    g.bench_function("drnm_at_50pct_assist", |b| {
        b.iter(|| black_box(read_metrics(&params, Some(ReadAssist::GndLowering)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
