//! Rare-event yield throughput: brute force vs scaled-sigma importance
//! sampling on the same ~6σ read-disturb event, same solve budget.
//!
//! The acceptance story of the rare-event engine, made executable:
//!
//! * `brute` — `sigma_scale = 1` over the calibrated t_ox + Vth-mismatch
//!   model. At a failure probability of ~1e-9, n = 768 samples see zero
//!   failures: the estimator returns 0 with no error bar — brute force
//!   is blind at this depth (resolving it head-on would take ~1e9 solves).
//! * `is` — the identical budget with the proposal widened 2.5×. The
//!   re-weighted estimator resolves a nonzero, bounded tail probability
//!   from the raw hits the widening manufactures.
//!
//! Both studies' costs (samples, raw failures, Newton solves) land in
//! `results/BENCH_yield.json` under `bench.yield.*`, pinned by
//! `tfet-bench history check` like every other bench; the structural
//! assertions below run in quick mode (`TFET_BENCH_QUICK=1`) via
//! `scripts/check.sh`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfet_bench::experiments::{fast, yield_model};
use tfet_bench::sci;
use tfet_sram::prelude::*;
use tfet_sram::rare_event::{yield_read, YieldConfig, YieldStudy};

const N: usize = 768;
const SEED: u64 = 2011;
const IS_SCALE: f64 = 2.5;

fn base() -> CellParams {
    fast(
        CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(0.6)
            .with_vdd(0.8),
    )
}

fn run(scale: f64) -> YieldStudy {
    let cfg = YieldConfig::new(N, SEED)
        .with_model(yield_model())
        .with_sigma_scale(scale);
    yield_read(&base(), None, 0.0, &cfg).expect("yield study")
}

fn bench(c: &mut Criterion) {
    let brute = run(1.0);
    let is = run(IS_SCALE);
    println!(
        "brute  (scale 1.0): p={} fails={} ess={:.1}",
        brute.p_fail.map(sci).unwrap_or_default(),
        brute.failures,
        brute.ess
    );
    println!(
        "is     (scale {IS_SCALE}): p={} se={} fails={} ess={:.1}",
        is.p_fail.map(sci).unwrap_or_default(),
        is.std_error.map(sci).unwrap_or_default(),
        is.failures,
        is.ess
    );

    // Acceptance: at the same n = 768 budget, brute force must be blind
    // (zero failures, estimate exactly 0) while the importance sampler
    // resolves a nonzero bounded estimate of the ~6σ tail.
    assert_eq!(
        brute.failures, 0,
        "brute force must see no failures at this depth/budget"
    );
    assert_eq!(brute.p_fail, Some(0.0));
    let p = is.p_fail.expect("IS estimate exists");
    assert!(
        is.failures > 0 && p > 0.0,
        "IS must manufacture raw hits (got {} fails, p = {p:e})",
        is.failures
    );
    assert!(
        p < 1e-5,
        "IS estimate must stay in the deep tail, got {p:e}"
    );
    assert!(
        is.ess >= 4.0,
        "ESS floor: weight spread ate the sample, ess = {}",
        is.ess
    );
    assert!(is.quarantined.is_empty() && brute.quarantined.is_empty());

    // One traced run emits the versioned RunReport with both studies'
    // deterministic cost counters before any timing loop.
    tfet_bench::write_bench_report("yield", || {
        let brute = black_box(run(1.0));
        let is = black_box(run(IS_SCALE));
        tfet_obs::counter("bench.yield.brute_samples", brute.samples as u64);
        tfet_obs::counter("bench.yield.brute_failures", brute.failures as u64);
        tfet_obs::counter("bench.yield.is_samples", is.samples as u64);
        tfet_obs::counter("bench.yield.is_failures", is.failures as u64);
        tfet_obs::counter("bench.yield.is_ess", is.ess as u64);
    });

    let mut g = c.benchmark_group("yield_throughput");
    g.sample_size(10);
    g.bench_function("read_disturb_n768_brute", |b| {
        b.iter(|| black_box(run(1.0)))
    });
    g.bench_function("read_disturb_n768_is2p5", |b| {
        b.iter(|| black_box(run(IS_SCALE)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
