#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh  (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== cargo bench --no-run =="
cargo bench --workspace --offline --no-run

echo "All checks passed."
