#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh  (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy tfet-obs -D warnings =="
cargo clippy -p tfet-obs --all-targets --offline -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== fault-injection suite (rescue ladder, checked searches, MC quarantine) =="
cargo test -q -p tfet-circuit --offline rescue
cargo test -q -p tfet-numerics --offline checked_
cargo test -q -p tfet-sram --offline quarantine
cargo test -q -p tfet-integration --offline --test observability quarantine

echo "== cargo bench --no-run =="
cargo bench --workspace --offline --no-run

echo "== solver bench compile check =="
cargo bench -p tfet-bench --bench solver_throughput --offline --no-run
cargo bench -p tfet-bench --bench mc_throughput --offline --no-run

echo "== sparse-vs-dense figure-CSV bit-identity (--quick, 1 and 8 threads) =="
figtmp="$(mktemp -d)"
trap 'rm -rf "$figtmp"' EXIT
for threads in 1 8; do
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --out "$figtmp/sparse_t$threads" >/dev/null
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --dense --out "$figtmp/dense_t$threads" >/dev/null
  diff -r "$figtmp/sparse_t$threads" "$figtmp/dense_t$threads"
  echo "threads=$threads: sparse and dense figure CSVs are bit-identical"
done

echo "== run_report smoke (traced scorecard + MC, JSON validates) =="
cargo run -q --release --offline --example run_report -- --report >/dev/null
python3 - <<'EOF'
import json
r = json.load(open("results/run_report.json"))
assert r["schema"] == "tfet-obs.run-report", r["schema"]
assert r["version"] == 2, r["version"]
assert r["histograms"]["newton.iters_per_solve"]["count"] > 0
assert r["counters"]["lte.accepted_steps"] > 0
assert any(p.startswith("scorecard/") for p in r["spans"])
# v2: the quarantined section is always present; a healthy run's is empty,
# and every record that does appear is fully structured.
assert r["quarantined"] == [] or all(
    rec["study"] and rec["index"] >= 0 and rec["params"] and rec["error"]
    for rec in r["quarantined"]
), r["quarantined"]
print(f"run_report.json ok: {len(r['spans'])} span paths, "
      f"{len(r['counters'])} counters, "
      f"{len(r['quarantined'])} quarantined")
EOF

echo "All checks passed."
