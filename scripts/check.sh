#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh  (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy tfet-obs -D warnings =="
cargo clippy -p tfet-obs --all-targets --offline -- -D warnings

echo "== cargo clippy tfet-bench -D warnings =="
cargo clippy -p tfet-bench --all-targets --offline -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== fault-injection suite (rescue ladder, checked searches, MC quarantine, latency guards) =="
cargo test -q -p tfet-circuit --offline rescue
cargo test -q -p tfet-numerics --offline checked_
cargo test -q -p tfet-sram --offline quarantine
cargo test -q -p tfet-integration --offline --test observability quarantine
cargo test -q -p tfet-circuit --offline --test latency

echo "== cargo bench --no-run (compile coverage) =="
cargo bench --workspace --offline --no-run

echo "== bench acceptance asserts (quick mode: closures run once, floors executed) =="
# TFET_BENCH_QUICK=1 makes the criterion stub run each bench body exactly
# once (no calibration or sampling loops), so the cost-ratio floors and
# rare-event acceptance assertions inside the bench functions actually
# execute — `--no-run` above only proves they compile. These runs also
# rewrite results/BENCH_*.json from the current code, which the history
# gate below then diffs against the committed baselines.
for b in solver_throughput mc_throughput wl_crit_throughput array_throughput yield_throughput; do
  TFET_BENCH_QUICK=1 cargo bench -q -p tfet-bench --bench "$b" --offline
done

echo "== sparse-vs-dense figure-CSV bit-identity (--quick, 1 and 8 threads) =="
# Solver tiers agree to ~1e-5 relative; every figure formatter caps its
# display resolution above that scale (see `fixed1_sig4` in tfet-bench),
# so the CSVs must be byte-identical — no tolerance fallback.
figtmp="$(mktemp -d)"
trap 'rm -rf "$figtmp"' EXIT
for threads in 1 8; do
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --out "$figtmp/sparse_t$threads" >/dev/null
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --dense --out "$figtmp/dense_t$threads" >/dev/null
  diff -r "$figtmp/sparse_t$threads" "$figtmp/dense_t$threads"
  echo "threads=$threads: sparse and dense figure CSVs are bit-identical"
done

echo "== latency-tier figure-CSV bit-identity (--quick, 1 and 8 threads) =="
# The quiescent-partition tier and the per-device bypass beneath it must be
# invisible in the physics: a latency-off run diffs byte for byte against
# the default run — every figure, both thread counts.
for threads in 1 8; do
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --latency-off --out "$figtmp/lat_off_t$threads" >/dev/null
  diff -r "$figtmp/sparse_t$threads" "$figtmp/lat_off_t$threads"
  echo "threads=$threads: figure CSVs bit-identical latency-on vs latency-off"
done

echo "== SPICE deck round-trip (golden corpus, committed cell decks, proptests) =="
# Export -> import -> export must be byte-identical: the golden corpus pins
# the serializer's canonical form, deck_topology pins that the committed
# examples/decks/*.sp files import bit-identically to the built-in
# topologies, and the proptests fuzz the invariant over random decks.
cargo test -q -p tfet-circuit --offline --test golden
cargo test -q -p tfet-circuit --offline --test proptests
cargo test -q -p tfet-sram --offline --test golden_decks
cargo test -q -p tfet-sram --offline --test deck_topology

echo "== run_deck smoke (deck-driven 6T reproduces the 430.8 ps WL_crit) =="
run_deck_out="$(cargo run -q --release --offline -p tfet-sram --example run_deck)"
if ! grep -q "430.8 ps" <<<"$run_deck_out"; then
  echo "run_deck lost the headline 430.8 ps WL_crit:"
  echo "$run_deck_out"
  exit 1
fi
echo "run_deck: WL_crit 430.8 ps reproduced from examples/decks/cell_6t.sp"

echo "== run_report smoke (traced scorecard + MC, JSON validates) =="
cargo run -q --release --offline --example run_report -- --report \
  --out results/run_report.json >/dev/null
python3 - <<'EOF'
import json
r = json.load(open("results/run_report.json"))
assert r["schema"] == "tfet-obs.run-report", r["schema"]
assert r["version"] == 4, r["version"]
assert r["histograms"]["newton.iters_per_solve"]["count"] > 0
assert r["counters"]["lte.accepted_steps"] > 0
assert any(p.startswith("scorecard/") for p in r["spans"])
# v2: the quarantined section is always present; a healthy run's is empty,
# and every record that does appear is fully structured.
assert r["quarantined"] == [] or all(
    rec["study"] and rec["index"] >= 0 and rec["params"] and rec["error"]
    for rec in r["quarantined"]
), r["quarantined"]
# v3: the partitions section is always present; single-cell studies record
# no per-cell telemetry, but any record that appears is fully structured.
assert isinstance(r["partitions"], list), r["partitions"]
for rec in r["partitions"]:
    assert rec["study"] and rec["row"] >= 0 and rec["col"] >= 0 and rec["metrics"]
# v4: the yield section records every rare-event study; the example runs
# one, so it must be populated and fully structured.
assert r["yield"], "v4 yield section must be populated"
for rec in r["yield"]:
    assert rec["study"] and rec["metric"] and rec["samples"] > 0
    assert rec["survivors"] + rec["quarantined"] <= rec["samples"]
    assert rec["p_fail"] is None or 0.0 <= rec["p_fail"] <= 1.0
    assert rec["ess"] >= 0.0
print(f"run_report.json ok: {len(r['spans'])} span paths, "
      f"{len(r['counters'])} counters, "
      f"{len(r['quarantined'])} quarantined, "
      f"{len(r['partitions'])} partition cells, "
      f"{len(r['yield'])} yield studies")
EOF

echo "== timeline trace gate (traced 8x8 array write, 1 and 8 threads) =="
# The traced write must export valid Chrome trace_events JSON (balanced
# B/E span pairs, thread ids, the transient/Newton/assembly/array span
# names), and the per-cell partition heatmap — unlike the timing-dependent
# trace itself — must be byte-identical at 1 and 8 threads.
for threads in 1 8; do
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline \
    --example trace_array -- --quick --out-dir "$figtmp/trace_t$threads" >/dev/null
  python3 - "$figtmp/trace_t$threads/trace_array8x8.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
assert t["displayTimeUnit"] == "ns", t.get("displayTimeUnit")
ev = t["traceEvents"]
assert ev, "empty trace"
for e in ev:
    assert "name" in e and "ph" in e and "pid" in e and "tid" in e, e
spans = [e for e in ev if e["ph"] in ("B", "E")]
opens = sum(1 for e in spans if e["ph"] == "B")
closes = len(spans) - opens
assert opens > 0 and opens == closes, f"unbalanced spans: {opens} B, {closes} E"
for e in spans:
    assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0, e
names = {e["name"] for e in spans}
for req in ("array_netlist_op", "transient", "newton", "decide", "stamp"):
    assert req in names, f"span `{req}` missing from {sorted(names)}"
print(f"trace ok: {len(ev)} events, {opens} span pairs, {len(names)} span names")
EOF
done
diff "$figtmp/trace_t1/trace_array8x8_partitions.csv" \
     "$figtmp/trace_t8/trace_array8x8_partitions.csv"
grep -q '^array_write,4,4,' "$figtmp/trace_t1/trace_array8x8_partitions.csv"
echo "trace: partition heatmap byte-identical at 1 and 8 threads"

echo "== bench history (machine-independent cost counters vs committed baseline) =="
# Positive: the committed BENCH_*.json reports must match the committed
# results/history baselines within tolerance.
cargo run -q --release --offline -p tfet-bench --bin tfet-bench -- history check
# Negative: a tampered cost counter must fail the gate with exit code 1.
histneg="$figtmp/history_neg"
mkdir -p "$histneg"
cp results/BENCH_array.json "$histneg/"
python3 - "$histneg/BENCH_array.json" <<'EOF'
import json, sys
path = sys.argv[1]
r = json.load(open(path))
r["counters"]["newton.jac_refactored"] = \
    2 * r["counters"].get("newton.jac_refactored", 0) + 100
json.dump(r, open(path, "w"))
EOF
if cargo run -q --release --offline -p tfet-bench --bin tfet-bench -- \
    history check --bench-dir "$histneg" --history-dir results/history >/dev/null; then
  echo "history check failed to flag a tampered cost counter"
  exit 1
fi
echo "history: baselines pass; tampered newton.jac_refactored correctly fails"

echo "All checks passed."
