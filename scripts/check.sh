#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh  (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy tfet-obs -D warnings =="
cargo clippy -p tfet-obs --all-targets --offline -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== fault-injection suite (rescue ladder, checked searches, MC quarantine, latency guards) =="
cargo test -q -p tfet-circuit --offline rescue
cargo test -q -p tfet-numerics --offline checked_
cargo test -q -p tfet-sram --offline quarantine
cargo test -q -p tfet-integration --offline --test observability quarantine
cargo test -q -p tfet-circuit --offline --test latency

echo "== cargo bench --no-run =="
cargo bench --workspace --offline --no-run

echo "== solver bench compile check =="
cargo bench -p tfet-bench --bench solver_throughput --offline --no-run
cargo bench -p tfet-bench --bench mc_throughput --offline --no-run
cargo bench -p tfet-bench --bench array_throughput --offline --no-run

echo "== sparse-vs-dense figure-CSV bit-identity (--quick, 1 and 8 threads) =="
figtmp="$(mktemp -d)"
trap 'rm -rf "$figtmp"' EXIT
for threads in 1 8; do
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --out "$figtmp/sparse_t$threads" >/dev/null
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --dense --out "$figtmp/dense_t$threads" >/dev/null
  diff -r "$figtmp/sparse_t$threads" "$figtmp/dense_t$threads"
  echo "threads=$threads: sparse and dense figure CSVs are bit-identical"
done

echo "== latency-tier array-figure CSV bit-identity (--quick, 1 and 8 threads) =="
# The quiescent-partition tier must be invisible in the physics it was built
# for: the array figure from a latency-off run diffs byte for byte against
# the default (latency-on) run, at both thread counts. The remaining
# (single-cell) figures are compared at 1e-3 relative instead of byte-exact:
# `--latency-off` also disables the PR-6 per-device bypass beneath the tier,
# whose documented ~1e-5 relative error can flip the last printed digit of a
# delay figure at a rounding boundary.
for threads in 1 8; do
  RAYON_NUM_THREADS=$threads cargo run -q --release --offline -p tfet-bench \
    --bin figures -- --quick --latency-off --out "$figtmp/lat_off_t$threads" >/dev/null
  diff "$figtmp/sparse_t$threads/array.csv" "$figtmp/lat_off_t$threads/array.csv"
  python3 - "$figtmp/sparse_t$threads" "$figtmp/lat_off_t$threads" <<'EOF'
import csv, os, sys
a_dir, b_dir = sys.argv[1], sys.argv[2]
names = sorted(os.listdir(a_dir))
assert names == sorted(os.listdir(b_dir)), "figure sets differ"
for name in names:
    a = list(csv.reader(open(os.path.join(a_dir, name))))
    b = list(csv.reader(open(os.path.join(b_dir, name))))
    assert len(a) == len(b), f"{name}: row count differs"
    for ra, rb in zip(a, b):
        assert len(ra) == len(rb), f"{name}: column count differs"
        for va, vb in zip(ra, rb):
            if va == vb:
                continue
            fa, fb = float(va), float(vb)  # non-numeric must match exactly
            rel = abs(fa - fb) / max(abs(fa), abs(fb), 1e-300)
            assert rel <= 1e-3, f"{name}: {va} vs {vb} (rel {rel:.2e})"
print(f"{len(names)} figure CSVs agree within 1e-3 relative")
EOF
  echo "threads=$threads: array.csv bit-identical latency-on vs latency-off"
done

echo "== SPICE deck round-trip (golden corpus, committed cell decks, proptests) =="
# Export -> import -> export must be byte-identical: the golden corpus pins
# the serializer's canonical form, deck_topology pins that the committed
# examples/decks/*.sp files import bit-identically to the built-in
# topologies, and the proptests fuzz the invariant over random decks.
cargo test -q -p tfet-circuit --offline --test golden
cargo test -q -p tfet-circuit --offline --test proptests
cargo test -q -p tfet-sram --offline --test golden_decks
cargo test -q -p tfet-sram --offline --test deck_topology

echo "== run_deck smoke (deck-driven 6T reproduces the 430.8 ps WL_crit) =="
run_deck_out="$(cargo run -q --release --offline -p tfet-sram --example run_deck)"
if ! grep -q "430.8 ps" <<<"$run_deck_out"; then
  echo "run_deck lost the headline 430.8 ps WL_crit:"
  echo "$run_deck_out"
  exit 1
fi
echo "run_deck: WL_crit 430.8 ps reproduced from examples/decks/cell_6t.sp"

echo "== run_report smoke (traced scorecard + MC, JSON validates) =="
cargo run -q --release --offline --example run_report -- --report >/dev/null
python3 - <<'EOF'
import json
r = json.load(open("results/run_report.json"))
assert r["schema"] == "tfet-obs.run-report", r["schema"]
assert r["version"] == 2, r["version"]
assert r["histograms"]["newton.iters_per_solve"]["count"] > 0
assert r["counters"]["lte.accepted_steps"] > 0
assert any(p.startswith("scorecard/") for p in r["spans"])
# v2: the quarantined section is always present; a healthy run's is empty,
# and every record that does appear is fully structured.
assert r["quarantined"] == [] or all(
    rec["study"] and rec["index"] >= 0 and rec["params"] and rec["error"]
    for rec in r["quarantined"]
), r["quarantined"]
print(f"run_report.json ok: {len(r['spans'])} span paths, "
      f"{len(r['counters'])} counters, "
      f"{len(r['quarantined'])} quarantined")
EOF

echo "All checks passed."
