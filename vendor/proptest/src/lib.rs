//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, range and collection strategies, `prop_map`,
//! `prop_flat_map`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and [`ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and message;
//!   the generator is fully deterministic (fixed per-case seeds), so a
//!   failure reproduces exactly on rerun.
//! * **Deterministic by default.** Upstream seeds from the OS; this stub
//!   always runs the same case sequence, which doubles as a regression
//!   corpus.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case: a pure function of the case index.
    pub fn deterministic(case: u32) -> Self {
        // Decorrelate consecutive case indices through one finalizer round.
        let mut r = TestRng {
            state: (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D,
        };
        r.next_u64();
        r
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (self.unit_f64() * n as f64) as usize
        }
    }
}

/// Error signalled by a failing (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// Input rejected by `prop_assume!`; the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values into a dependent strategy and draws from it
    /// (upstream `Strategy::prop_flat_map`).
    fn prop_flat_map<T, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        T: Strategy,
        F: Fn(Self::Value) -> T,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let dependent = (self.f)(self.inner.generate(rng));
        dependent.generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span.max(1)) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($($s:ident => $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A => a);
tuple_strategy!(A => a, B => b);
tuple_strategy!(A => a, B => b, C => c);
tuple_strategy!(A => a, B => b, C => c, D => d);
tuple_strategy!(A => a, B => b, C => c, D => d, E => e);
tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`](fn@vec): an exact length or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    /// Conversion into [`SizeRange`] (upstream `Into<SizeRange>`).
    pub trait IntoSizeRange {
        /// The equivalent size range.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                lo: self,
                hi: self + 1,
            }
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                lo: self.start,
                hi: self.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi.saturating_sub(self.size.lo).max(1);
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) when violated.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    }};
}

/// Defines property tests: each `fn name(args in strategies) { body }` runs
/// the body over `config.cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(case);
                let ($($pat,)+) = ($( $crate::Strategy::generate(&($strat), &mut rng) ,)+);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed at case {case}/{}: {msg}",
                            stringify!($name),
                            config.cases
                        );
                    }
                }
            }
            // A property that rejects every input never tested anything.
            assert!(
                rejected < config.cases,
                "property '{}' rejected all {} cases",
                stringify!($name),
                config.cases
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(y in (0.0f64..1.0).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_and_assume_work(x in 0.0f64..1.0) {
            prop_assume!(x >= 0.0);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic(3);
        let mut b = TestRng::deterministic(3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x = {x}");
            }
        }
        always_fails();
    }
}
