//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the rand 0.9 API it actually uses: a
//! deterministic [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! and uniform draws via [`Rng::random`]. The generator is SplitMix64 —
//! 64-bit state, full period, passes the statistical needs of the
//! Monte-Carlo layer (Box–Muller Gaussians with accurate mean/σ) — but it is
//! **not** the upstream ChaCha12 `StdRng`, so absolute draw sequences differ
//! from builds against the real crate. Every consumer in this workspace
//! treats the stream as an opaque deterministic function of the seed, which
//! this stub preserves exactly.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from an RNG's output stream.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Core random-source trait (the subset of `rand::Rng` used here).
pub trait Rng {
    /// The next 64 raw bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value (rand 0.9's `random`).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic standard RNG (SplitMix64; see crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): additive state walk through
            // a strong 64-bit finalizer.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_draws_are_unit_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn other_primitive_draws() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u64 = r.random();
        let _: u32 = r.random();
        let _: bool = r.random();
    }
}
