//! No-op derive macros backing the offline `serde` stub: the annotations
//! compile, no impls are generated (nothing in-tree consumes them).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
