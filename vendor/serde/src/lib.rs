//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain
//! data types but never serializes them (no format crate is in the
//! dependency tree). Since the build environment cannot reach crates.io,
//! this stub supplies the trait names and no-op derive macros so those
//! annotations keep compiling; any future PR that adds a real serialization
//! backend should replace this with the upstream crate.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
