//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! benchmark-harness surface the workspace's `[[bench]]` targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures wall-clock time per sample (one sample = one batch of
//! iterations, like upstream) and prints min / median / mean to stdout.
//! There is no warm-up modelling, outlier analysis, or HTML report — the
//! numbers are honest but the statistics are simple.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export so existing `use criterion::black_box` imports keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; simulation benches in this
        // workspace all shrink it to ~10, so a small default keeps any
        // bench that forgets `sample_size` from running for minutes.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Overrides the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (upstream finalizes reports here; the stub prints
    /// per-benchmark as it goes, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_secs: f64,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping results alive via `black_box`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_secs = start.elapsed().as_secs_f64();
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Quick mode (`TFET_BENCH_QUICK=1`): run each benchmark closure exactly
    // once, with no calibration pass or sampling loop. The workspace's CI
    // gate uses this to *execute* the cost-counter assertions and run-report
    // writes that live inside bench bodies — which `cargo bench --no-run`
    // merely compiles — without paying for timing statistics nobody reads.
    if std::env::var_os("TFET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty()) {
        let mut b = Bencher {
            iters: 1,
            elapsed_secs: 0.0,
        };
        f(&mut b);
        println!(
            "{name}: {} (quick mode, 1 sample x 1 iter)",
            fmt_time(b.elapsed_secs)
        );
        return;
    }
    // Calibrate: time one iteration, then pick a per-sample iteration count
    // targeting ~50 ms per sample (capped so slow simulations run once).
    let mut calib = Bencher {
        iters: 1,
        elapsed_secs: 0.0,
    };
    f(&mut calib);
    let per_iter = calib.elapsed_secs.max(1e-9);
    let iters = ((0.05 / per_iter) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed_secs: 0.0,
        };
        f(&mut b);
        samples.push(b.elapsed_secs / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name}: min {} / median {} / mean {}  ({sample_size} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a group runner (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut counter = 0u64;
        group.bench_function("count", |b| b.iter(|| counter += 1));
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn quick_mode_runs_each_closure_once() {
        std::env::set_var("TFET_BENCH_QUICK", "1");
        let mut calls = 0u64;
        let mut iters_seen = 0u64;
        run_benchmark("quick", 10, |b| {
            calls += 1;
            iters_seen = b.iters;
            b.iter(|| ());
        });
        std::env::remove_var("TFET_BENCH_QUICK");
        assert_eq!(calls, 1, "no calibration pass, no sampling loop");
        assert_eq!(iters_seen, 1);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
