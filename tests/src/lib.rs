//! Integration-test crate: see `tests/` for the cross-crate suites that
//! reproduce the paper's end-to-end claims. The library itself is empty.
