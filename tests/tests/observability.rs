//! Observability regression tests: tracing must never change the numbers.
//!
//! The contract has three legs:
//!
//! 1. enabling the tracer leaves every measured value bit-identical — at
//!    1 thread and at 8;
//! 2. the deterministic report sections (spans, counters, histograms,
//!    distributions, series) are thread-count invariant; only `work` and
//!    `timings_ns` may depend on scheduling;
//! 3. the captured report of a traced scorecard-scale run actually contains
//!    the span tree, Newton histogram and LTE statistics the run report
//!    schema promises.
//!
//! Tracing state is process-global, so every test here serializes on one
//! lock (the file is its own test binary; nothing else shares the process).

use std::sync::Mutex;
use tfet_obs::RunReport;
use tfet_sram::montecarlo::{mc_drnm_with, mc_wl_crit_with, McConfig};
use tfet_sram::ops::WriteExperiment;
use tfet_sram::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The experiments' fast-simulation settings (2 ps step, 8 ps tolerance).
fn fast(params: CellParams) -> CellParams {
    let mut p = params;
    p.sim.dt = 2e-12;
    p.sim.pulse_tol = 8e-12;
    p
}

const N: usize = 8;
const SEED: u64 = 42;

fn base() -> CellParams {
    fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6))
}

fn study(threads: usize) -> (Vec<f64>, usize, Vec<f64>) {
    let p = base();
    let wl = mc_wl_crit_with(&p, None, N, McConfig::new(SEED).with_threads(threads)).unwrap();
    let drnm = mc_drnm_with(&p, None, N, McConfig::new(SEED).with_threads(threads)).unwrap();
    (wl.values, wl.failures, drnm.values)
}

#[test]
fn tracing_does_not_change_wl_crit_or_drnm_at_1_and_8_threads() {
    let _guard = hold();
    tfet_obs::disable();
    let plain_1 = study(1);
    let plain_8 = study(8);

    tfet_obs::reset();
    tfet_obs::enable();
    let traced_1 = study(1);
    let traced_8 = study(8);
    tfet_obs::disable();

    // Exact equality — bit-identical floats, same order, same failures.
    assert_eq!(traced_1, plain_1, "tracing changed the numbers at 1 thread");
    assert_eq!(
        traced_8, plain_8,
        "tracing changed the numbers at 8 threads"
    );
    assert_eq!(plain_1, plain_8, "thread count changed the numbers");
}

#[test]
fn deterministic_report_sections_are_thread_count_invariant() {
    let _guard = hold();
    tfet_obs::reset();
    tfet_obs::enable();
    study(1);
    tfet_obs::disable();
    let one = RunReport::capture();

    tfet_obs::reset();
    tfet_obs::enable();
    study(8);
    tfet_obs::disable();
    let eight = RunReport::capture();

    assert_eq!(one.spans, eight.spans, "span tree must not see scheduling");
    assert_eq!(one.counters, eight.counters, "counters must be logical");
    assert_eq!(one.histograms, eight.histograms);
    assert_eq!(one.distributions, eight.distributions);
    assert_eq!(one.series, eight.series);
    // `work` (per-worker compiles/builds/binds) is the designated home for
    // scheduling-dependent tallies; at 8 workers each compiles its own
    // experiment, so the sections genuinely differ.
    assert!(one.timings_ns.is_empty(), "timings stay off by default");
}

#[test]
fn repeat_traced_runs_produce_byte_identical_reports() {
    let _guard = hold();
    let capture = || {
        tfet_obs::reset();
        tfet_obs::enable();
        study(1);
        tfet_obs::disable();
        RunReport::capture().to_json()
    };
    assert_eq!(capture(), capture());
}

#[test]
fn traced_study_report_contains_span_tree_histograms_and_lte_stats() {
    let _guard = hold();
    tfet_obs::reset();
    tfet_obs::enable();
    study(1);
    tfet_obs::disable();
    let report = RunReport::capture();

    // The span tree reaches from the study root down to individual Newton
    // solves, with sample spans pinned to their own roots.
    for path in [
        "mc_wl_crit",
        "mc_sample_wl_crit/wl_crit/bisection/write/transient/newton",
        "mc_sample_drnm/read_metrics/read/transient/newton",
    ] {
        assert!(
            report.spans.get(path).is_some_and(|&n| n > 0),
            "span {path:?} missing from {:?}",
            report.spans.keys().collect::<Vec<_>>()
        );
    }
    let newton = &report.histograms["newton.iters_per_solve"];
    assert!(newton.count > 0, "Newton histogram must be populated");
    assert!(newton.min >= 1 && newton.max >= newton.min);
    assert!(
        report
            .counters
            .get("lte.accepted_steps")
            .copied()
            .unwrap_or(0)
            > 0,
        "adaptive runs must report LTE accept counts"
    );
    assert!(report.series.contains_key("bisection.bracket"));

    let json = report.to_json();
    assert!(json.starts_with(r#"{"schema":"tfet-obs.run-report","version":4"#));
    assert!(json.contains("newton.iters_per_solve"));
    assert!(
        json.contains(r#""quarantined":[]"#),
        "a healthy study reports an explicitly empty quarantine section"
    );
}

#[test]
fn traced_quarantine_lands_in_the_report_and_ignores_thread_count() {
    let _guard = hold();
    // The asymmetric cell rejects WL_crit per sample: every sample is
    // quarantined with a structured cause instead of aborting the study.
    // Forensics bundles go to a scratch directory, not the repo.
    let scratch = std::env::temp_dir().join(format!("tfet-obs-quarantine-{}", std::process::id()));
    tfet_obs::forensics::set_dir(&scratch);
    let p = fast(CellParams::new(CellKind::TfetAsym6T));
    let capture = |threads: usize| {
        tfet_obs::reset();
        tfet_obs::enable();
        let mc = mc_wl_crit_with(&p, None, 3, McConfig::new(SEED).with_threads(threads)).unwrap();
        tfet_obs::disable();
        (mc, RunReport::capture())
    };
    let (mc_1, report_1) = capture(1);
    let (mc_8, report_8) = capture(8);

    assert_eq!(mc_1, mc_8, "quarantine sets must not see scheduling");
    assert_eq!(mc_1.quarantined.len(), 3);
    assert_eq!(mc_1.yield_fraction(), 0.0);

    assert_eq!(report_1.quarantined, report_8.quarantined);
    assert_eq!(report_1.quarantined.len(), 3);
    assert_eq!(report_1.counters.get("mc.quarantined"), Some(&3));
    for (i, q) in report_1.quarantined.iter().enumerate() {
        assert_eq!(q.study, "mc_wl_crit");
        assert_eq!(q.index, i as u64);
        assert_eq!(q.seed, SEED);
        assert_eq!(q.params.len(), 7, "one drawn t_ox deviation per role");
        assert!(q.error.contains("WL_crit"), "structured cause: {}", q.error);
    }
    let json = report_1.to_json();
    assert!(json.contains(r#""quarantined":[{"study":"mc_wl_crit","index":0,"seed":42"#));

    // Each quarantined sample also wrote one forensics bundle (the second
    // capture's reset rewinds the bundle sequence, overwriting the first's).
    let bundles = std::fs::read_dir(&scratch).map(|d| d.count()).unwrap_or(0);
    assert_eq!(
        bundles, 3,
        "one mc_quarantine bundle per quarantined sample"
    );
    let _ = std::fs::remove_dir_all(&scratch);
    tfet_obs::forensics::set_dir(tfet_obs::forensics::DEFAULT_DIR);
}

/// One instrumented 8×8 array write under `threads` device-evaluation
/// workers, returning the captured report.
fn array_write_report(threads: usize) -> RunReport {
    tfet_circuit::set_assembly_threads(threads);
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    cell.sim.dt = 4e-12;
    let mut array = ArrayNetlist::build(ArraySpec::new(8, 8, cell)).unwrap();
    array.set_bit(3, 5, false);
    tfet_obs::reset();
    tfet_obs::enable();
    let w = array.write_transient(3, 5, true, 1.5e-9).unwrap();
    tfet_obs::disable();
    tfet_circuit::set_assembly_threads(0);
    assert!(w.success, "write must land");
    RunReport::capture()
}

#[test]
fn array_partition_telemetry_is_byte_identical_at_1_and_8_threads() {
    let _guard = hold();
    let one = array_write_report(1);
    let eight = array_write_report(8);

    // The partitions section is deterministic by construction (dormancy
    // decisions run serially in the decide phase), so the snapshots — and
    // their CSV heatmap rendering — must be byte-identical.
    assert!(!one.partitions.is_empty(), "8×8 write must report 64 cells");
    assert_eq!(one.partitions.len(), 64);
    assert_eq!(one.partitions, eight.partitions);
    assert_eq!(one.partition_csv(), eight.partition_csv());

    // Sanity of the content itself: the addressed column's cells see their
    // bitline trip, and dormancy dominates for bystander cells.
    let csv = one.partition_csv();
    assert!(csv.starts_with("study,row,col,metric,value\n"), "{csv}");
    assert!(
        csv.contains("array_write,3,5,"),
        "victim cell missing: {csv}"
    );
    assert!(csv.contains("guard_trip.wordline"), "{csv}");
    assert!(csv.contains("guard_trip.bitline"), "{csv}");
    let total: u64 = one
        .partitions
        .iter()
        .flat_map(|p| p.metrics.get("dormant"))
        .sum();
    assert!(total > 0, "an array hold must be dormant-dominated");
}

#[test]
fn traced_array_write_exports_valid_chrome_trace_json() {
    let _guard = hold();
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    cell.sim.dt = 4e-12;
    let mut array = ArrayNetlist::build(ArraySpec::new(4, 4, cell)).unwrap();
    tfet_obs::reset();
    tfet_obs::enable();
    tfet_obs::trace::start();
    array.write_transient(1, 2, true, 1.5e-9).unwrap();
    tfet_obs::trace::stop();
    tfet_obs::disable();

    let stats = tfet_obs::trace::stats();
    assert!(stats.events > 0, "trace must have recorded span events");
    assert_eq!(stats.dropped, 0, "ring must not wrap on a 4×4 write");

    // The export is strict JSON in the Chrome trace_events shape: parse it
    // back with the in-tree parser and check the invariants Perfetto needs.
    let json = tfet_obs::trace::export();
    let v = tfet_obs::Value::parse(&json).expect("trace JSON must parse");
    let events = v
        .get("traceEvents")
        .and_then(tfet_obs::Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(
        v.get("displayTimeUnit").and_then(tfet_obs::Value::as_str),
        Some("ns")
    );
    let mut begins = 0i64;
    let mut ends = 0i64;
    let mut names = std::collections::BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        assert!(ev.get("tid").is_some(), "every event carries a thread id");
        match ev.get("ph").and_then(tfet_obs::Value::as_str) {
            Some("B") => {
                begins += 1;
                names.insert(ev.get("name").and_then(tfet_obs::Value::as_str).unwrap());
                let ts = ev.get("ts").and_then(tfet_obs::Value::as_f64).unwrap();
                assert!(ts >= last_ts, "begin timestamps must be monotonic");
                last_ts = ts;
            }
            Some("E") => ends += 1,
            Some("M") => {} // thread_name metadata
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "span begin/end events must balance");
    for expected in ["array_netlist_op", "transient", "newton", "decide", "stamp"] {
        assert!(
            names.contains(expected),
            "span {expected:?} missing from trace: {names:?}"
        );
    }
}

#[test]
fn lifetime_stats_are_the_sum_of_per_run_stats() {
    let _guard = hold();
    let p = base();
    let mut exp = WriteExperiment::compile(&p, None).unwrap();
    let a = exp.run(1e-9).unwrap().result.stats;
    let b = exp.run(2e-9).unwrap().result.stats;
    let life = exp.lifetime_stats();
    assert_eq!(life.newton_solves, a.newton_solves + b.newton_solves);
    assert_eq!(life.newton_iters, a.newton_iters + b.newton_iters);
    assert_eq!(life.runs, a.runs + b.runs);
    assert_eq!(life.circuit_builds, a.circuit_builds + b.circuit_builds);
    assert_eq!(life.accepted_steps, a.accepted_steps + b.accepted_steps);
}
