//! Determinism regression tests for the parallel Monte-Carlo engine.
//!
//! The contract: a study's numbers are a function of `(params, seed, n)`
//! only — never of the worker-thread count or of scheduling. Every
//! comparison here is exact (`Vec<f64>` equality), not approximate.

use tfet_sram::metrics::{wl_crit, wl_crit_seeded, WlCrit};
use tfet_sram::montecarlo::{mc_drnm_with, mc_wl_crit_with, sample_variations, McConfig};
use tfet_sram::ops::run_write;
use tfet_sram::prelude::*;

/// The experiments' fast-simulation settings (2 ps step, 8 ps tolerance).
fn fast(params: CellParams) -> CellParams {
    let mut p = params;
    p.sim.dt = 2e-12;
    p.sim.pulse_tol = 8e-12;
    p
}

const N: usize = 8;
const SEED: u64 = 42;

/// A hand-rolled serial reference: the same per-sample RNG streams and the
/// same nominal-cell bisection hint as the engine, run in a plain loop with
/// no parallel machinery at all.
fn serial_reference_wl_crit(base: &CellParams) -> (Vec<f64>, usize) {
    let cfg = McConfig::new(SEED);
    let hint = wl_crit(base, None).ok().and_then(|w| w.as_finite());
    let mut values = Vec::new();
    let mut failures = 0;
    for i in 0..N {
        let mut rng = cfg.sample_rng(i);
        let params = base.clone().with_variations(sample_variations(&mut rng));
        match wl_crit_seeded(&params, None, hint).unwrap().value {
            WlCrit::Finite(w) => values.push(w),
            WlCrit::Infinite => failures += 1,
            WlCrit::Unbracketable => panic!("healthy reference cell must bracket"),
        }
    }
    (values, failures)
}

#[test]
fn mc_wl_crit_identical_across_thread_counts_and_serial_reference() {
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    let (ref_values, ref_failures) = serial_reference_wl_crit(&base);

    let one = mc_wl_crit_with(&base, None, N, McConfig::new(SEED).with_threads(1)).unwrap();
    let eight = mc_wl_crit_with(&base, None, N, McConfig::new(SEED).with_threads(8)).unwrap();

    // Exact equality — bit-identical floats, same order, same failure count.
    assert_eq!(one.values, ref_values, "1 thread vs serial reference");
    assert_eq!(one.failures, ref_failures);
    assert_eq!(eight.values, ref_values, "8 threads vs serial reference");
    assert_eq!(eight.failures, ref_failures);
}

#[test]
fn mc_drnm_identical_across_thread_counts() {
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6));
    let one = mc_drnm_with(&base, None, N, McConfig::new(SEED).with_threads(1)).unwrap();
    let eight = mc_drnm_with(&base, None, N, McConfig::new(SEED).with_threads(8)).unwrap();
    let three = mc_drnm_with(&base, None, N, McConfig::new(SEED).with_threads(3)).unwrap();
    assert_eq!(one, eight);
    assert_eq!(one, three);
}

#[test]
fn cached_lut_studies_are_also_thread_count_invariant() {
    // The LUT corner cache is shared mutable state across workers; sharing
    // must not leak scheduling into the numbers.
    let base = fast(
        CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(0.6)
            .with_lut_devices(),
    );
    let one = mc_drnm_with(&base, None, N, McConfig::new(SEED).with_threads(1)).unwrap();
    let eight = mc_drnm_with(&base, None, N, McConfig::new(SEED).with_threads(8)).unwrap();
    assert_eq!(one, eight);
}

#[test]
fn compiled_experiment_reuse_is_bit_identical_to_fresh_builds() {
    // One compiled write experiment, retargeted across a rotation of
    // (β, pulse width, variation sample) — including a repeat of the first
    // point — must reproduce a from-scratch build exactly, sample by sample.
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
    let cfg = McConfig::new(SEED);
    let rotation: [(f64, f64, Option<usize>); 4] = [
        (0.6, 2e-9, None),
        (0.9, 0.4e-9, Some(0)),
        (0.6, 1e-9, Some(3)),
        (0.6, 2e-9, None), // exact repeat of the first point
    ];

    let mut exp: Option<WriteExperiment> = None;
    for &(beta, width, sample) in &rotation {
        let mut params = base.clone().with_beta(beta);
        if let Some(i) = sample {
            let mut rng = cfg.sample_rng(i);
            params = params.with_variations(sample_variations(&mut rng));
        }
        let reused = match exp.as_mut() {
            Some(e) => {
                e.bind_cell(&params).unwrap();
                e.run(width).unwrap()
            }
            None => {
                let mut e = WriteExperiment::compile(&params, None).unwrap();
                let run = e.run(width).unwrap();
                exp = Some(e);
                run
            }
        };
        let fresh = run_write(&params, None, width).unwrap();
        let label = format!("beta={beta}, width={width:e}, sample={sample:?}");
        assert_eq!(
            reused.result.times(),
            fresh.result.times(),
            "times: {label}"
        );
        assert_eq!(
            reused.result.trace(reused.nodes.q),
            fresh.result.trace(fresh.nodes.q),
            "V(q): {label}"
        );
        assert_eq!(
            reused.result.trace(reused.nodes.qb),
            fresh.result.trace(fresh.nodes.qb),
            "V(qb): {label}"
        );
    }
}

#[test]
fn seeded_wl_crit_matches_unseeded_across_beta_grid() {
    // Seeding the bisection with the previous grid point's answer changes
    // the search path, not the answer: both searches must land within the
    // bisection tolerance of each other at every β, and agree exactly on
    // whether WL_crit is finite.
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
    let tol = base.sim.pulse_tol;
    let mut hint: Option<f64> = None;
    for beta in [0.4, 0.6, 0.8, 1.0] {
        let params = base.clone().with_beta(beta);
        let cold = wl_crit(&params, None).unwrap();
        let seeded = wl_crit_seeded(&params, None, hint).unwrap().value;
        match (cold, seeded) {
            (WlCrit::Finite(a), WlCrit::Finite(b)) => {
                assert!(
                    (a - b).abs() <= 2.0 * tol,
                    "beta={beta}: cold {a:e} vs seeded {b:e} beyond 2x pulse_tol"
                );
                hint = Some(a);
            }
            (a, b) => assert_eq!(a, b, "beta={beta}: finiteness must agree"),
        }
    }
}

#[test]
fn beta_sweep_is_deterministic_under_parallel_fanout() {
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
    let betas = [0.5, 0.8, 1.0, 1.5];
    let a = tfet_sram::explore::beta_sweep(&base, &betas).unwrap();
    let b = tfet_sram::explore::beta_sweep(&base, &betas).unwrap();
    assert_eq!(a, b, "repeated sweeps must agree exactly");
    let got: Vec<f64> = a.iter().map(|p| p.beta).collect();
    assert_eq!(got, betas, "points must come back in grid order");
}
