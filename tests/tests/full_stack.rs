//! Cross-crate integration: custom circuits built from the public APIs of
//! all layers at once — lookup-table devices inside SRAM-style circuits,
//! multi-cell half-select interaction, and retention over long transients.

use std::sync::Arc;
use tfet_circuit::transient::InitialState;
use tfet_circuit::{Circuit, TransientSpec, Waveform};
use tfet_devices::model::DeviceModel;
use tfet_devices::{LutDevice, NTfet, PTfet};
use tfet_sram::cell::build_cell_named;
use tfet_sram::ops::run_write;
use tfet_sram::prelude::*;

/// A TFET inverter built from LUT-compiled devices (the paper's Verilog-A
/// methodology) must switch rail-to-rail like the analytic one.
#[test]
fn lut_compiled_devices_drive_circuits() {
    let n_lut: Arc<dyn DeviceModel> = Arc::new(LutDevice::compile_default(NTfet::nominal()));
    let p_lut: Arc<dyn DeviceModel> = Arc::new(LutDevice::compile_default(PTfet::nominal()));

    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let inp = c.node("in");
    let out = c.node("out");
    c.vsource("VDD", vdd, Circuit::GND, Waveform::dc(0.8));
    let vin = c.vsource("VIN", inp, Circuit::GND, Waveform::dc(0.0));
    c.transistor("MP", p_lut, out, inp, vdd, 0.1);
    c.transistor("MN", n_lut, out, inp, Circuit::GND, 0.1);

    let op = c.dc_op().unwrap();
    assert!(
        op.voltage(out) > 0.78,
        "LUT inverter high: {}",
        op.voltage(out)
    );
    c.set_vsource_wave(vin, Waveform::dc(0.8));
    let op = c.dc_op().unwrap();
    assert!(
        op.voltage(out) < 0.02,
        "LUT inverter low: {}",
        op.voltage(out)
    );
}

/// Half-select study (the §4.3 drawback the paper discusses): two cells on
/// the same wordline, one column written, the other column's bitlines held
/// at their standby levels. The half-selected cell sees the wordline pulse
/// without write data and must retain its state.
#[test]
fn half_selected_cell_retains_state() {
    let mut params = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    params.sim.dt = 2e-12;
    let vdd = params.vdd;

    let mut c = Circuit::new();
    // Selected cell (column 0) and half-selected cell (column 1).
    let sel = build_cell_named(&mut c, &params, "c0_");
    let half = build_cell_named(&mut c, &params, "c1_");

    // Common rails.
    for n in [sel.vdd, half.vdd] {
        c.vsource("VDD", n, Circuit::GND, Waveform::dc(vdd));
    }
    for n in [sel.vss, half.vss] {
        c.vsource("VSS", n, Circuit::GND, Waveform::dc(0.0));
    }
    // Shared wordline waveform: active-low pulse (p-type access).
    let t0 = 0.3e-9;
    let width = 1.5e-9;
    let wl_wave = Waveform::pulse(vdd, 0.0, t0, width, 10e-12);
    c.vsource("WL0", sel.wl, Circuit::GND, wl_wave.clone());
    c.vsource("WL1", half.wl, Circuit::GND, wl_wave);

    // Selected column: write q -> 0 (BL to 0, BLB stays high).
    c.vsource(
        "BL0",
        sel.bl,
        Circuit::GND,
        Waveform::step(vdd, 0.0, 0.2e-9, 10e-12),
    );
    c.vsource("BLB0", sel.blb, Circuit::GND, Waveform::dc(vdd));
    // Half-selected column: bitlines *float* at their precharge level on the
    // column capacitance, as in a real array (driving them rail-hard would
    // turn the wordline pulse into a destructive pseudo-read — the §4.3
    // half-select hazard the paper says must be mitigated architecturally).
    c.capacitor(half.bl, Circuit::GND, params.c_bitline);
    c.capacitor(half.blb, Circuit::GND, params.c_bitline);

    // Both cells start with q = 1.
    let uic = vec![
        (sel.q, vdd),
        (sel.qb, 0.0),
        (half.q, vdd),
        (half.qb, 0.0),
        (sel.bl, vdd),
        (sel.blb, vdd),
        (half.bl, vdd),
        (half.blb, vdd),
        (sel.wl, vdd),
        (half.wl, vdd),
        (sel.vdd, vdd),
        (half.vdd, vdd),
    ];
    let res = c
        .transient(
            &TransientSpec::new(t0 + width + 1.5e-9, params.sim.dt),
            &InitialState::Uic(uic),
        )
        .unwrap();

    // Selected cell flipped; half-selected cell retained.
    assert!(
        res.final_voltage(sel.qb) - res.final_voltage(sel.q) > 0.3 * vdd,
        "selected cell must be written"
    );
    assert!(
        res.final_voltage(half.q) - res.final_voltage(half.qb) > 0.7 * vdd,
        "half-selected cell must retain its state: q={:.3}, qb={:.3}",
        res.final_voltage(half.q),
        res.final_voltage(half.qb)
    );
}

/// Retention: with the wordline inactive, the cell must hold both states
/// through a long quiet transient (100× the write timescale).
#[test]
fn cell_retains_both_states_over_long_idle() {
    let mut params = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    params.sim.dt = 2e-12;
    let vdd = params.vdd;

    for q_high in [true, false] {
        let mut c = Circuit::new();
        let nodes = build_cell_named(&mut c, &params, "");
        c.vsource("VDD", nodes.vdd, Circuit::GND, Waveform::dc(vdd));
        c.vsource("VSS", nodes.vss, Circuit::GND, Waveform::dc(0.0));
        c.vsource("WL", nodes.wl, Circuit::GND, Waveform::dc(vdd)); // inactive
        c.vsource("BL", nodes.bl, Circuit::GND, Waveform::dc(vdd));
        c.vsource("BLB", nodes.blb, Circuit::GND, Waveform::dc(vdd));
        let (vq, vqb) = if q_high { (vdd, 0.0) } else { (0.0, vdd) };
        let res = c
            .transient(
                &TransientSpec::new(100e-9, 50e-12),
                &InitialState::Uic(vec![
                    (nodes.q, vq),
                    (nodes.qb, vqb),
                    (nodes.bl, vdd),
                    (nodes.blb, vdd),
                    (nodes.wl, vdd),
                    (nodes.vdd, vdd),
                ]),
            )
            .unwrap();
        let dq = res.final_voltage(nodes.q) - res.final_voltage(nodes.qb);
        if q_high {
            assert!(dq > 0.7 * vdd, "q=1 state lost: Δ = {dq}");
        } else {
            assert!(dq < -0.7 * vdd, "q=0 state lost: Δ = {dq}");
        }
    }
}

/// The ops layer and a hand-built circuit must agree: a write driven through
/// `run_write` matches the same experiment assembled manually.
#[test]
fn ops_layer_matches_hand_built_write() {
    let mut params = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    params.sim.dt = 2e-12;
    let run = run_write(&params, None, 1.5e-9).unwrap();
    assert!(run.flipped());

    // Hand-built equivalent (same timing constants as ops defaults).
    let vdd = params.vdd;
    let mut c = Circuit::new();
    let nodes = build_cell_named(&mut c, &params, "");
    c.vsource("VDD", nodes.vdd, Circuit::GND, Waveform::dc(vdd));
    c.vsource("VSS", nodes.vss, Circuit::GND, Waveform::dc(0.0));
    c.vsource(
        "WL",
        nodes.wl,
        Circuit::GND,
        Waveform::pulse(vdd, 0.0, 0.25e-9, 1.5e-9, 10e-12),
    );
    c.vsource(
        "BL",
        nodes.bl,
        Circuit::GND,
        Waveform::step(vdd, 0.0, 0.2e-9, 10e-12),
    );
    c.vsource("BLB", nodes.blb, Circuit::GND, Waveform::dc(vdd));
    let res = c
        .transient(
            &TransientSpec::new(3.25e-9, params.sim.dt),
            &InitialState::Uic(vec![
                (nodes.q, vdd),
                (nodes.qb, 0.0),
                (nodes.bl, vdd),
                (nodes.blb, vdd),
                (nodes.wl, vdd),
                (nodes.vdd, vdd),
            ]),
        )
        .unwrap();
    let hand_flip = res.final_voltage(nodes.qb) - res.final_voltage(nodes.q) > 0.3 * vdd;
    assert_eq!(hand_flip, run.flipped(), "ops and hand-built runs agree");
}
