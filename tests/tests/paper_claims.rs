//! End-to-end reproduction of the paper's central claims, each exercised
//! through the full stack (device model → circuit simulator → SRAM layer).
//!
//! Section references are to Yang & Mohanram, *Robust 6T Si tunneling
//! transistor SRAM design*, DATE 2011.

use tfet_sram::compare::Design;
use tfet_sram::explore::{corner_score, ra_tradeoff, wa_tradeoff};
use tfet_sram::metrics::{read_metrics, static_power, wl_crit};
use tfet_sram::prelude::*;

/// Fast-but-accurate simulation settings for integration tests.
fn fast(params: CellParams) -> CellParams {
    let mut p = params;
    p.sim.dt = 2e-12;
    p.sim.pulse_tol = 8e-12;
    p
}

/// §3: "the 6T TFET SRAM based on outward access transistors consumes 5 and
/// 9 orders of magnitude higher static power than the TFET SRAM based on
/// inward access transistors at supply voltage of 0.6 V and 0.8 V".
#[test]
fn s3_outward_access_leaks_orders_more() {
    for (vdd, lo, hi) in [(0.6, 3.0, 7.5), (0.8, 6.0, 11.0)] {
        let inward =
            static_power(&CellParams::tfet6t(AccessConfig::InwardP).with_vdd(vdd)).unwrap();
        for outward in [AccessConfig::OutwardN, AccessConfig::OutwardP] {
            let p = static_power(&CellParams::tfet6t(outward).with_vdd(vdd)).unwrap();
            let orders = (p / inward).log10();
            assert!(
                (lo..hi).contains(&orders),
                "{outward:?} at {vdd} V: {orders:.1} orders over inward"
            );
        }
    }
}

/// §3: "inward ntfets cannot be used as the access transistors" — infinite
/// WL_crit at every cell ratio.
#[test]
fn s3_inward_n_cannot_write_at_any_beta() {
    for beta in [0.3, 0.8, 1.5] {
        let p = fast(CellParams::tfet6t(AccessConfig::InwardN).with_beta(beta));
        assert!(
            wl_crit(&p, None).unwrap().is_infinite(),
            "inward-n must fail at β={beta}"
        );
    }
}

/// §3 / Fig. 4(b): inward-p writes at β ≤ 1 and fails at larger β.
#[test]
fn s3_inward_p_write_boundary_near_beta_one() {
    let works = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.8));
    assert!(!wl_crit(&works, None).unwrap().is_infinite());
    let fails = fast(CellParams::tfet6t(AccessConfig::InwardP).with_beta(2.0));
    assert!(wl_crit(&fails, None).unwrap().is_infinite());
}

/// §3 note: "if an SRAM architecture allows both bitlines to be clamped to
/// ground instead of V_DD during hold condition, outward TFETs should be
/// used" — the 7T cell does exactly this with its write bitlines and pays
/// no reverse-bias leakage.
#[test]
fn s3_outward_access_is_fine_with_grounded_bitlines() {
    let seven_t = static_power(&CellParams::new(CellKind::Tfet7T)).unwrap();
    let inward = static_power(&CellParams::tfet6t(AccessConfig::InwardP)).unwrap();
    let ratio = (seven_t / inward).log10().abs();
    assert!(
        ratio < 1.0,
        "7T ≈ inward 6T hold power, {ratio:.2} orders apart"
    );
}

/// §4 / Fig. 8: GND-lowering RA is the most effective technique — its
/// tradeoff curve comes closest to the lower-right corner.
#[test]
fn s4_gnd_lowering_ra_wins_the_tradeoff() {
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
    let wa_betas = [1.2, 2.0];
    let ra_betas = [0.5, 0.7];
    let (wl_scale, drnm_scale) = (1e-9, 0.1);

    let mut scores = Vec::new();
    for wa in WriteAssist::ALL {
        let curve = wa_tradeoff(&base, wa, &wa_betas).unwrap();
        if let Some(s) = corner_score(&curve, wl_scale, drnm_scale) {
            scores.push((curve.label.clone(), s));
        }
    }
    for ra in ReadAssist::ALL {
        let curve = ra_tradeoff(&base, ra, &ra_betas).unwrap();
        if let Some(s) = corner_score(&curve, wl_scale, drnm_scale) {
            scores.push((curve.label.clone(), s));
        }
    }
    let best = scores
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("scores exist");
    assert_eq!(
        best.0, "GND lowering RA",
        "paper's winning technique, got {scores:?}"
    );
}

/// §4.2: at larger cell ratios the rail-strengthening read assists beat the
/// access-weakening ones, and wordline raising is competitive only at very
/// small β (Fig. 7e crossover).
#[test]
fn s4_ra_effectiveness_crossover_with_beta() {
    let base = fast(CellParams::tfet6t(AccessConfig::InwardP));
    // Large β: GND lowering beats wordline raising.
    let big = 0.9;
    let gnd = read_metrics(&base.clone().with_beta(big), Some(ReadAssist::GndLowering))
        .unwrap()
        .drnm;
    let wlr = read_metrics(
        &base.clone().with_beta(big),
        Some(ReadAssist::WordlineRaising),
    )
    .unwrap()
    .drnm;
    assert!(
        gnd > wlr,
        "at β={big}: GND-lowering {gnd} !> WL-raising {wlr}"
    );
}

/// §5: the proposed design dominates the other TFET SRAMs on write
/// reliability and matches the 7T on static power; CMOS pays 6–7 orders of
/// static power for its performance.
#[test]
fn s5_scorecard_orderings() {
    let vdd = 0.8;
    let mut cards = Vec::new();
    for d in Design::ALL {
        let mut params = d.params(vdd);
        params.sim.dt = 2e-12;
        params.sim.pulse_tol = 8e-12;
        // Rebuild the scorecard with fast sim options.
        let read = read_metrics(&params, d.read_assist()).unwrap();
        let wl = match wl_crit(&params, None) {
            Ok(w) => Some(w),
            Err(SramError::Undefined { .. }) => None,
            Err(e) => panic!("{e}"),
        };
        let power = static_power(&params).unwrap();
        cards.push((d, read, wl, power));
    }

    let get = |d: Design| cards.iter().find(|c| c.0 == d).unwrap();
    let proposed = get(Design::Proposed);
    let cmos = get(Design::Cmos);
    let seven = get(Design::Tfet7T);
    let asym = get(Design::Asym6T);

    // Static power: proposed ≈ 7T ≪ asym ≪ CMOS-ish ordering.
    assert!((seven.3 / proposed.3).log10().abs() < 1.0);
    let cmos_gap = (cmos.3 / proposed.3).log10();
    assert!((5.0..8.5).contains(&cmos_gap), "CMOS gap {cmos_gap:.1}");
    assert!(asym.3 > 10.0 * proposed.3, "asym must leak ≫ proposed");

    // Write margin: CMOS < proposed < 7T; asym undefined.
    let w_p = proposed.2.unwrap().as_finite().expect("proposed writes");
    let w_c = cmos.2.unwrap().as_finite().expect("CMOS writes");
    assert!(w_c < w_p, "CMOS WL_crit {w_c:e} < proposed {w_p:e}");
    assert!(asym.2.is_none(), "asym WL_crit undefined");

    // Reads are non-destructive everywhere.
    for (d, read, _, _) in &cards {
        assert!(read.drnm > 0.0, "{d:?} read must not destroy the cell");
    }
    // 7T read is decoupled: near-full-rail margin.
    assert!(seven.1.drnm > 0.9 * vdd);
}

/// §5 / Fig. 12(b): at the default supply the proposed design's assisted
/// DRNM beats the unassisted plain cell by roughly the assist level.
#[test]
fn s5_assisted_drnm_exceeds_plain_by_assist_level() {
    let p = fast(
        CellParams::tfet6t(AccessConfig::InwardP)
            .with_beta(0.6)
            .with_vdd(0.8),
    );
    let plain = read_metrics(&p, None).unwrap().drnm;
    let assisted = read_metrics(&p, Some(ReadAssist::GndLowering))
        .unwrap()
        .drnm;
    let gain = assisted - plain;
    assert!(
        (0.1..0.6).contains(&gain),
        "RA gain {gain} should be near the 0.24 V assist level"
    );
}

/// §6 (conclusions): the complete proposed design is simultaneously
/// writable, readable, robust, small, and ultra-low-leakage at every supply
/// in the paper's range.
#[test]
fn s6_proposed_design_works_across_supply_range() {
    for vdd in [0.6, 0.7, 0.8, 0.9] {
        let mut p = fast(
            CellParams::tfet6t(AccessConfig::InwardP)
                .with_beta(0.6)
                .with_vdd(vdd),
        );
        // Dynamics slow exponentially at reduced supply; stretch the time
        // budgets accordingly (see SimOptions::rescale_for_supply).
        p.sim.rescale_for_supply(vdd);
        let wl = wl_crit(&p, None).unwrap();
        assert!(!wl.is_infinite(), "write fails at {vdd} V");
        let read = read_metrics(&p, Some(ReadAssist::GndLowering)).unwrap();
        assert!(read.drnm > 0.0, "read fails at {vdd} V");
        let power = static_power(&p).unwrap();
        assert!(power < 1e-15, "leakage {power:e} too high at {vdd} V");
    }
}
