//! Array demo: a 4×4 TFET SRAM macro exercised like a memory.
//!
//! Builds a 16-cell array of the paper's proposed cell, writes a text
//! pattern through the shared wordlines/bitlines (every operation is a full
//! array transient — half-select effects included), reads it back through
//! the sense path, and reports the disturb ledger.
//!
//! Run with: `cargo run --release --example sram_array`

use tfet_sram::array::{ArrayParams, SramArray};
use tfet_sram::prelude::*;

const ROWS: usize = 4;
const COLS: usize = 4;

fn show(array: &SramArray) {
    for r in 0..ROWS {
        let row: String = (0..COLS)
            .map(|c| match array.bit(r, c) {
                Some(true) => '1',
                Some(false) => '0',
                None => '?',
            })
            .collect();
        println!("  row {r}: {row}");
    }
}

fn main() -> Result<(), SramError> {
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    cell.sim.dt = 4e-12; // 16 cells per transient: keep the demo snappy
    let mut array = SramArray::new(ArrayParams::new(ROWS, COLS, cell))?;

    // The pattern to store: a diagonal plus one corner.
    let pattern: [[bool; COLS]; ROWS] = [
        [true, false, false, true],
        [false, true, false, false],
        [false, false, true, false],
        [true, false, false, true],
    ];

    println!("writing pattern ({} full-array transients)...", ROWS * COLS);
    let mut disturbs = 0;
    for (r, row) in pattern.iter().enumerate() {
        for (c, &bit) in row.iter().enumerate() {
            let report = array.write(r, c, bit)?;
            assert!(report.success, "write ({r},{c}) failed");
            disturbs += report.disturbed.len();
        }
    }
    println!("stored state (decoded from storage-node voltages):");
    show(&array);
    println!("half-select/disturb victims during writes: {disturbs}");

    println!("\nreading back through the bitline sense path...");
    let mut errors = 0;
    let mut worst_margin = f64::INFINITY;
    for (r, row) in pattern.iter().enumerate() {
        for (c, &expect) in row.iter().enumerate() {
            let read = array.read(r, c)?;
            if read.value != expect {
                errors += 1;
            }
            if read.destructive {
                println!("  destructive read at ({r},{c})!");
            }
            worst_margin = worst_margin.min(read.sense_margin);
        }
    }
    println!(
        "read-back errors: {errors}/{}; worst sense margin {:.0} mV",
        ROWS * COLS,
        worst_margin * 1e3
    );
    assert_eq!(errors, 0, "the macro must read back its pattern");
    Ok(())
}
