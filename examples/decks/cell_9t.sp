* Hand-written 9T TFET SRAM cell: the DATE'11 inward-p 6T write core
* augmented with a 3-transistor decoupled read port. No Rust topology
* code exists for this cell — it is defined entirely by this deck and
* classified by connectivity at import time.
*
* Read port: a 2-high n-type stack (rd1/rd2, both gated on qb)
* discharges the precharged read bitline through the internal node `mid`
* when qb is high, and a weak p-type keeper (rd3) holds rbl at vdd when
* qb is low. The write bitlines idle at vdd because the inward-p access
* devices block in standby.
.subckt cell_9t q qb bl blb wl vdd vss rbl rwl
* Cross-coupled inverters.
Xpu_l q qb vdd ptfet W=0.06
Xpd_l q qb vss ntfet W=0.06
Xpu_r qb q vdd ptfet W=0.06
Xpd_r qb q vss ntfet W=0.06
* Inward-p write access: drain on the storage node, source on the bitline.
Xax_l q wl bl ptfet W=0.10
Xax_r qb wl blb ptfet W=0.10
* Storage-node wiring parasitics (absorbed into CellParams::c_node).
CQ q 0 20f
CQB qb 0 20f
* Decoupled read port.
Xrd1 rbl qb mid ntfet W=0.10
Xrd2 mid qb rwl ntfet W=0.10
Xrd3 rbl qb vdd ptfet W=0.06
.ends
.end
