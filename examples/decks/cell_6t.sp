.title 6t inward-p tfet sram cell, beta=0.6 (date'11 proposed)
.subckt cell_6t q qb bl blb wl vdd vss
XMPU_L q qb vdd ptfet W=0.0600
XMPD_L q qb vss ntfet W=0.0600
XMPU_R qb q vdd ptfet W=0.0600
XMPD_R qb q vss ntfet W=0.0600
CQ q 0 1.500000e-16
CQB qb 0 1.500000e-16
XMAL q wl bl ptfet W=0.1000
XMAR qb wl blb ptfet W=0.1000
.ends
.end
