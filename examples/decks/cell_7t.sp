* Hand-written 7T TFET SRAM cell: outward-n 6T write core plus a
* single-transistor decoupled read buffer (gate on qb, drain on the read
* bitline, source on the active-low read wordline).
*
* Exercises the importer's tolerance for scrambled card order, arbitrary
* instance names, and mixed-case model references. Device roles are
* inferred from connectivity, and widths are re-derived from CellParams
* at placement, so the W= values below are only the deck's own sizing.
.subckt cell_7t q qb bl blb wl vdd vss rbl rwl
* Read buffer first, access pair next, cross-coupled core last.
Xrd rbl qb rwl ntfet W=0.10
Xax_l q wl bl ntfet W=0.10
Xax_r qb wl blb ntfet W=0.10
CQ q 0 20f
CQB qb 0 20f
Xpu_l q qb vdd ptfet W=0.06
Xpd_l q qb vss ntfet W=0.20
Xpu_r qb q vdd ptfet W=0.06
Xpd_r qb q vss ntfet W=0.20
.ends
.end
