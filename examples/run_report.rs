//! Run report: trace a scorecard + small Monte-Carlo and emit the
//! observability artifacts.
//!
//! Enables `tfet-obs` tracing, measures the proposed cell's full scorecard,
//! an 8-sample `WL_crit` / DRNM Monte-Carlo, and a small importance-sampled
//! yield study (the v4 `yield` section), then writes the captured
//! [`tfet_obs::RunReport`] to `results/run_report.json` (the versioned
//! `tfet-obs.run-report` schema — see `docs/RUN_REPORT.md`).
//!
//! Run with: `cargo run --release --example run_report`
//!
//! Pass `--report` to also print the human-readable report table (span tree,
//! counters, Newton-iteration histograms, value distributions), and
//! `--out <path>` to write the JSON somewhere other than
//! `results/run_report.json` (check gates write to scratch directories so
//! parallel runs never race on one file).

use tfet_sram::compare::{scorecard, Design};
use tfet_sram::metrics::WlCrit;
use tfet_sram::montecarlo::{mc_drnm_with, mc_wl_crit_with, McConfig};
use tfet_sram::prelude::*;
use tfet_sram::rare_event::{yield_read, VariationModel, YieldConfig};

const N: usize = 8;
const SEED: u64 = 42;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let print_table = args.iter().any(|a| a == "--report");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/run_report.json".to_string());

    tfet_obs::reset();
    tfet_obs::enable();

    // The full §5 scorecard of the proposed design at nominal supply.
    let card = scorecard(Design::Proposed, 0.8)?;
    match card.wl_crit {
        Some(WlCrit::Finite(w)) => println!("WL_crit : {:8.1} ps", w * 1e12),
        Some(WlCrit::Infinite) => println!("WL_crit : write fails"),
        Some(WlCrit::Unbracketable) => println!("WL_crit : search did not converge"),
        None => println!("WL_crit : undefined"),
    }
    println!("DRNM    : {:8.1} mV", card.drnm * 1e3);

    // A small Monte-Carlo with fast transient settings: enough samples to
    // populate the per-sample cost distributions without a long wait.
    let mut cell = CellParams::tfet6t(AccessConfig::InwardP).with_beta(0.6);
    cell.sim.dt = 2e-12;
    cell.sim.pulse_tol = 8e-12;
    let mc = mc_wl_crit_with(&cell, None, N, McConfig::new(SEED))?;
    println!(
        "MC      : {}/{N} samples write, failure rate {:.2}",
        mc.values.len(),
        mc.failure_rate()
    );
    let drnm = mc_drnm_with(&cell, Some(ReadAssist::GndLowering), N, McConfig::new(SEED))?;
    println!(
        "MC DRNM : {} samples, yield {:.2}",
        drnm.values.len(),
        drnm.yield_fraction()
    );

    // A small importance-sampled yield study populates the v4 `yield`
    // section: the paper's t_ox factor plus Vth mismatch, proposal widened
    // 2x (see `tfet_sram::rare_event`).
    let yield_cfg = YieldConfig::new(N, SEED)
        .with_model(VariationModel::paper().with_vth(7e-3, 56e-3))
        .with_sigma_scale(2.0);
    let study = yield_read(&cell, None, 0.2, &yield_cfg)?;
    println!(
        "Yield   : P(DRNM < 0.2 V) = {:.2e} (ESS {:.1})",
        study.p_fail.unwrap_or(f64::NAN),
        study.ess
    );

    tfet_obs::disable();
    let report = tfet_obs::RunReport::capture();

    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, report.to_json())?;
    println!("report  : {}", path.display());

    if print_table {
        println!("\n{}", report.render());
    }
    Ok(())
}
