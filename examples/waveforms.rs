//! Waveform viewer: watch a write and a read happen.
//!
//! Renders the storage-node and bitline transients of the proposed cell as
//! ASCII strip charts — the closest a terminal gets to the paper's scope
//! shots, and a direct exercise of the circuit simulator's probe API.
//!
//! Run with: `cargo run --release --example waveforms`

use tfet_circuit::{NodeId, TransientResult};
use tfet_sram::ops::{run_read, run_write};
use tfet_sram::prelude::*;

/// Renders one node's trace as a row of 64 sample buckets mapped to glyphs.
fn strip(result: &TransientResult, node: NodeId, label: &str, v_max: f64) {
    const WIDTH: usize = 64;
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    let times = result.times();
    let t_end = *times.last().expect("nonempty");
    let mut row = String::with_capacity(WIDTH);
    for k in 0..WIDTH {
        let t = t_end * (k as f64 + 0.5) / WIDTH as f64;
        let v = result.voltage_at(node, t).clamp(0.0, v_max);
        let g = ((v / v_max) * (GLYPHS.len() - 1) as f64).round() as usize;
        row.push(GLYPHS[g] as char);
    }
    println!("{label:>4} |{row}|");
}

fn main() -> Result<(), SramError> {
    let params = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    let v_max = 1.05 * params.vdd;

    println!("== write q: 1 -> 0 (wordline pulse 1.5 ns) ==");
    let w = run_write(&params, None, 1.5e-9)?;
    println!(
        "0 ns {}--{:.1} ns; WL active {:.2}-{:.2} ns; flipped = {}",
        " ".repeat(48),
        w.t_end * 1e9,
        w.t_wl_on * 1e9,
        w.t_wl_off * 1e9,
        w.flipped()
    );
    for (node, label) in [(w.nodes.q, "q"), (w.nodes.qb, "qb"), (w.nodes.wl, "wl")] {
        strip(&w.result, node, label, v_max);
    }

    println!("\n== read of q = 0 (GND-lowering RA) ==");
    let r = run_read(&params, Some(ReadAssist::GndLowering))?;
    println!(
        "0 ns {}--{:.1} ns; WL active {:.2}-{:.2} ns; DRNM = {:.0} mV",
        " ".repeat(48),
        r.result.times().last().unwrap() * 1e9,
        r.t_wl_on * 1e9,
        r.t_wl_off * 1e9,
        r.drnm() * 1e3
    );
    for (node, label) in [
        (r.nodes.q, "q"),
        (r.nodes.qb, "qb"),
        (r.nodes.bl, "bl"),
        (r.nodes.blb, "blb"),
    ] {
        strip(&r.result, node, label, v_max);
    }
    if let Some(d) = r.read_delay(0.05) {
        println!("50 mV bitline differential after {:.0} ps", d * 1e12);
    }
    Ok(())
}
