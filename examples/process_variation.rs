//! Process-variation study of the final design (paper §4.3).
//!
//! Monte-Carlo over ±5 % per-transistor gate-oxide-thickness variation for
//! the proposed cell (β = 0.6, GND-lowering RA): DRNM and WL_crit
//! distributions, printed as text histograms like the paper's Figs. 9–10.
//!
//! Run with: `cargo run --release --example process_variation`

use tfet_numerics::{Histogram, Summary};
use tfet_sram::metrics::SENSE_DV;
use tfet_sram::montecarlo::{mc_drnm, mc_wl_crit};
use tfet_sram::prelude::*;

const SAMPLES: usize = 60;
const SEED: u64 = 2011;

fn main() -> Result<(), SramError> {
    let mut params = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    // Monte-Carlo is transient-heavy; a 2 ps step keeps this example quick
    // while staying well inside the metric's convergence regime.
    params.sim.dt = 2e-12;
    params.sim.pulse_tol = 8e-12;

    println!("Monte-Carlo, {SAMPLES} samples, ±5 % t_ox per transistor (seed {SEED})\n");

    // --- DRNM under the selected read assist -------------------------------
    let drnm = mc_drnm(&params, Some(ReadAssist::GndLowering), SAMPLES, SEED)?;
    let s = Summary::of(&drnm.values);
    println!("DRNM with GND-lowering RA: {s}");
    println!("{}", Histogram::from_data(&drnm.values, 10));
    assert!(s.min > SENSE_DV, "every sample must read non-destructively");

    // --- WL_crit of the write-sized cell ------------------------------------
    let wl = mc_wl_crit(&params, None, SAMPLES, SEED)?;
    println!(
        "WL_crit: {} finite samples, {} write failures ({:.1} % failure rate)",
        wl.values.len(),
        wl.failures,
        wl.failure_rate() * 100.0
    );
    let ws = Summary::of(&wl.values);
    println!("WL_crit summary: {ws}");
    println!("{}", Histogram::from_data(&wl.values, 10));

    println!(
        "spread: DRNM cv = {:.1} %, WL_crit cv = {:.1} % — the paper's\n\
         conclusion: sized-for-write + GND-lowering RA is variation-robust.",
        s.cv() * 100.0,
        ws.cv() * 100.0
    );
    Ok(())
}
