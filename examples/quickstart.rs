//! Quickstart: measure the paper's proposed SRAM cell.
//!
//! Builds the DATE'11 design — a 6T TFET cell with inward p-type access
//! transistors, sized at cell ratio β = 0.6 to favour the write, read with
//! GND-lowering read assist — and reports every §5 metric next to the 6T
//! CMOS baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use tfet_sram::metrics::{read_metrics, static_power, wl_crit, write_delay, WlCrit};
use tfet_sram::prelude::*;

fn main() -> Result<(), SramError> {
    println!("== 6T inward-pTFET SRAM, beta = 0.6, GND-lowering RA (proposed) ==");
    let proposed = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);

    let power = static_power(&proposed)?;
    println!("hold static power : {:10.3e} W", power);

    let read = read_metrics(&proposed, Some(ReadAssist::GndLowering))?;
    println!("DRNM (with RA)    : {:10.1} mV", read.drnm * 1e3);
    match read.read_delay {
        Some(d) => println!("read delay (50 mV): {:10.1} ps", d * 1e12),
        None => println!("read delay        : sense signal did not develop"),
    }

    match wl_crit(&proposed, None)? {
        WlCrit::Finite(w) => println!("WL_crit           : {:10.1} ps", w * 1e12),
        WlCrit::Infinite => println!("WL_crit           : write fails"),
        WlCrit::Unbracketable => println!("WL_crit           : search did not converge"),
    }
    if let Some(d) = write_delay(&proposed, None)? {
        println!("write delay       : {:10.1} ps", d * 1e12);
    }

    println!("\n== 6T CMOS SRAM baseline (32 nm LP class, beta = 1.5) ==");
    let cmos = CellParams::cmos6t().with_beta(1.5).with_vdd(0.8);
    let cmos_power = static_power(&cmos)?;
    println!("hold static power : {:10.3e} W", cmos_power);
    let cmos_read = read_metrics(&cmos, None)?;
    println!("DRNM              : {:10.1} mV", cmos_read.drnm * 1e3);

    println!(
        "\nTFET cell leaks {:.1} orders of magnitude less than CMOS in hold.",
        (cmos_power / power).log10()
    );
    Ok(())
}
