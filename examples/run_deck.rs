//! Run the standard cell experiments on a SPICE-deck-defined topology.
//!
//! Imports a `.subckt` cell definition from a deck file, classifies its
//! devices into roles by connectivity, and drives the same compiled
//! write/read/WL_crit experiments the built-in cells use — no Rust
//! topology code required for new cell variants.
//!
//! Run with:
//!   `cargo run --release --example run_deck -- [DECK] [--cell NAME]`
//!
//! `DECK` defaults to `examples/decks/cell_6t.sp` (the exported DATE'11
//! proposed cell, which reproduces the built-in 6T bit-for-bit). Try the
//! hand-written variants `cell_7t.sp` and `cell_9t.sp` in the same
//! directory.

use tfet_circuit::Deck;
use tfet_devices::standard_models;
use tfet_sram::metrics::{read_metrics_on, wl_crit_on, WlCrit};
use tfet_sram::prelude::*;

fn main() -> Result<(), SramError> {
    let mut path = String::from("examples/decks/cell_6t.sp");
    let mut cell: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cell" => {
                cell = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--cell needs a subcircuit name");
                    std::process::exit(2);
                }));
            }
            other => path = other.to_string(),
        }
    }

    let text = std::fs::read_to_string(&path)
        .map_err(|e| SramError::InvalidParameter(format!("reading {path}: {e}")))?;
    let models = standard_models();
    let deck = Deck::parse(&text, &models)
        .map_err(|e| SramError::InvalidParameter(format!("parsing {path}: {e}")))?;
    let sub = match &cell {
        Some(name) => deck.find_subckt(name).ok_or_else(|| {
            SramError::InvalidParameter(format!("{path} has no .subckt `{name}`"))
        })?,
        None => deck
            .subckts
            .first()
            .ok_or_else(|| SramError::InvalidParameter(format!("{path} defines no .subckt")))?,
    };
    let topo = CellTopology::from_subckt(sub, &deck.subckts, &models)?;

    // Parameterize at the paper's proposed operating point: β = 0.6,
    // V_DD = 0.8 V, 2 ps step / 8 ps pulse tolerance. The technology
    // family follows the deck's device models; everything else about the
    // cell (orientation, read port, auxiliaries) comes from the topology.
    let is_tfet = sub
        .flatten(&deck.subckts)
        .map_err(|e| SramError::InvalidParameter(format!("flattening `{}`: {e}", sub.name)))?
        .devices
        .iter()
        .any(|d| d.model.to_ascii_lowercase().contains("tfet"));
    let mut params = if is_tfet {
        CellParams::tfet6t(topo.access())
    } else {
        CellParams::cmos6t()
    }
    .with_beta(0.6);
    params.sim.dt = 2e-12;
    params.sim.pulse_tol = 8e-12;

    println!("== {} ({}) ==", topo.name(), path);
    println!(
        "technology        : {}",
        if is_tfet { "TFET" } else { "CMOS" }
    );
    println!("access devices    : {:?}", topo.access());
    println!(
        "read port         : {}",
        if topo.has_read_port() {
            "decoupled (rbl/rwl)"
        } else {
            "none"
        }
    );
    println!("device slots      :");
    for slot in topo.slots() {
        println!(
            "  [{}] {:12} {:14} {}",
            slot.index,
            slot.name,
            format!("{:?}", slot.role),
            if slot.n_type { "n-type" } else { "p-type" }
        );
    }

    let read = read_metrics_on(&topo, &params, None)?;
    println!("DRNM              : {:10.1} mV", read.drnm * 1e3);
    match read.read_delay {
        Some(d) => println!("read delay (50 mV): {:10.1} ps", d * 1e12),
        None => println!("read delay        : sense signal did not develop"),
    }

    match wl_crit_on(&topo, &params, None)? {
        WlCrit::Finite(w) => {
            println!("WL_crit           : {:10.1} ps", w * 1e12);
            let mut exp = WriteExperiment::compile_on(&topo, &params, None)?;
            let run = exp.run(2.0 * w)?;
            match (run.flipped(), run.write_delay()) {
                (true, Some(d)) => {
                    println!("write delay       : {:10.1} ps (at 2x WL_crit)", d * 1e12)
                }
                (true, None) => println!("write             : flips at 2x WL_crit"),
                (false, _) => println!("write             : did not flip at 2x WL_crit"),
            }
        }
        WlCrit::Infinite => println!("WL_crit           : write fails"),
        WlCrit::Unbracketable => println!("WL_crit           : search did not converge"),
    }
    Ok(())
}
