//! Timeline trace of a full-array write: Perfetto-loadable span stream plus
//! the per-cell dormancy heatmap.
//!
//! Builds an R×C array netlist of the paper's proposed cell, enables the
//! observability registry *and* the timeline trace ring buffers, runs one
//! write transient (half-select effects included), and writes:
//!
//! * `results/trace_array<R>x<C>.json` — Chrome `trace_events` JSON: open
//!   it at <https://ui.perfetto.dev> (or `chrome://tracing`) to see the
//!   transient / Newton / assembly-phase span hierarchy on the time axis;
//! * `results/trace_array<R>x<C>_partitions.csv` — the deterministic
//!   `(study, row, col, metric, value)` dormancy heatmap: per-cell duty
//!   cycles, refresh causes and guard-trip attribution
//!   (wordline vs bitline vs rail).
//!
//! Run with: `cargo run --release --example trace_array`
//!
//! Flags: `--rows N` / `--cols N` (default 16×16), `--quick` (8×8),
//! `--out-dir DIR` (default `results`).

use tfet_sram::prelude::{AccessConfig, ArrayNetlist, ArraySpec, CellParams, SramError};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let default_dim = if quick { 8 } else { 16 };
    let rows: usize = flag(&args, "--rows")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(default_dim);
    let cols: usize = flag(&args, "--cols")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(default_dim);
    let out_dir = flag(&args, "--out-dir").unwrap_or_else(|| "results".to_string());

    let mut cell = CellParams::tfet6t(AccessConfig::InwardP)
        .with_beta(0.6)
        .with_vdd(0.8);
    cell.sim.dt = 4e-12; // array-scale demo: coarse fixed grid keeps it quick
    let mut array = ArrayNetlist::build(ArraySpec::new(rows, cols, cell))?;

    // Checkerboard background so half-selected neighbours are non-trivial.
    for r in 0..rows {
        for c in 0..cols {
            array.set_bit(r, c, (r + c) % 2 == 0);
        }
    }

    // Metrics + timeline trace on: the trace records every span open/close
    // (transient, newton, decide/eval/stamp, compose, trisolve, …) with
    // monotonic timestamps and thread ids into per-thread ring buffers.
    tfet_obs::reset();
    tfet_obs::enable();
    tfet_obs::trace::start();

    // Generous pulse (the regression suites write at 1.5 ns too), so the
    // traced write actually flips the cell through the full driver/mux path.
    let (row, col) = (rows / 2, cols / 2);
    let write = array
        .write_transient(row, col, false, 1.5e-9)
        .map_err(|e: SramError| format!("array write failed: {e}"))?;
    println!(
        "write ({row},{col}): success={} disturbed={} steps={}",
        write.success,
        write.disturbed.len(),
        write.stats.accepted_steps
    );

    tfet_obs::trace::stop();
    tfet_obs::disable();

    let stats = tfet_obs::trace::stats();
    println!(
        "trace   : {} events on {} thread(s), {} dropped",
        stats.events, stats.threads, stats.dropped
    );

    std::fs::create_dir_all(&out_dir)?;
    let trace_path = format!("{out_dir}/trace_array{rows}x{cols}.json");
    tfet_obs::trace::write(&trace_path)?;
    println!("trace   : {trace_path} (open in https://ui.perfetto.dev)");

    let report = tfet_obs::RunReport::capture();
    let csv_path = format!("{out_dir}/trace_array{rows}x{cols}_partitions.csv");
    std::fs::write(&csv_path, report.partition_csv())?;
    println!("heatmap : {csv_path}");

    // Headline dormancy summary from the run's own telemetry.
    let parts = &write.result.partitions;
    let decisions: u64 = parts.iter().map(|t| t.decisions).sum();
    let dormant: u64 = parts.iter().map(|t| t.dormant).sum();
    if decisions > 0 {
        println!(
            "dormancy: {:.1} % of {} cell-decisions served from cache",
            100.0 * dormant as f64 / decisions as f64,
            decisions
        );
    }
    Ok(())
}
