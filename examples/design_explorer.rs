//! Design explorer: retrace the paper's design flow end to end.
//!
//! The DATE'11 study proceeds in three screens, each reproduced here:
//!
//! 1. **Access-configuration screen (§3)** — of the four TFET access
//!    orientations, eliminate the ones that leak (outward) or cannot write
//!    (inward-n);
//! 2. **Cell-ratio screen (Fig. 4)** — sweep β: small β writes, large β
//!    reads; no β does both;
//! 3. **Assist selection (§4 / Fig. 8)** — compare write-assist and
//!    read-assist techniques and pick the cell ratio + technique pair
//!    closest to the "lower-right corner" (large DRNM, small WL_crit).
//!
//! Run with: `cargo run --release --example design_explorer`

use tfet_sram::assist::{ReadAssist, WriteAssist};
use tfet_sram::explore::{beta_sweep, corner_score, ra_tradeoff, wa_tradeoff};
use tfet_sram::metrics::{read_metrics, static_power, wl_crit, WlCrit};
use tfet_sram::prelude::*;

fn main() -> Result<(), SramError> {
    // ---- Screen 1: access-transistor configuration (§3) -------------------
    println!("== Screen 1: access configuration at beta = 0.8, VDD = 0.8 V ==");
    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "access", "static power", "WL_crit", "verdict"
    );
    let mut survivors = Vec::new();
    for access in AccessConfig::ALL {
        let params = CellParams::tfet6t(access).with_beta(0.8);
        let power = static_power(&params)?;
        let wl = wl_crit(&params, None)?;
        let leaky = power > 1e-14;
        let verdict = if leaky {
            "leaks"
        } else if wl.is_infinite() {
            "can't write"
        } else {
            "viable"
        };
        let wl_str = match wl {
            WlCrit::Finite(w) => format!("{:8.0} ps", w * 1e12),
            WlCrit::Infinite => "     inf".to_string(),
            WlCrit::Unbracketable => "       ??".to_string(),
        };
        println!("{access:<10?} {power:>12.2e} W {wl_str:>12} {verdict:>10}");
        if verdict == "viable" {
            survivors.push(access);
        }
    }
    assert_eq!(
        survivors,
        vec![AccessConfig::InwardP],
        "paper §3 conclusion"
    );
    println!("-> only inward p-type access survives (paper §3)\n");

    // ---- Screen 2: cell-ratio sweep (Fig. 4) ------------------------------
    println!("== Screen 2: beta sweep of the 6T inpTFET cell ==");
    println!("{:>6} {:>12} {:>12}", "beta", "DRNM (mV)", "WL_crit (ps)");
    let base = CellParams::tfet6t(AccessConfig::InwardP);
    let betas = [0.4, 0.6, 0.8, 1.0, 1.5, 2.0];
    for pt in beta_sweep(&base, &betas)? {
        let wl = match pt.wl_crit {
            WlCrit::Finite(w) => format!("{:10.0}", w * 1e12),
            WlCrit::Infinite => "       inf".to_string(),
            WlCrit::Unbracketable => "        ??".to_string(),
        };
        println!("{:>6.2} {:>12.1} {:>12}", pt.beta, pt.drnm * 1e3, wl);
    }
    println!("-> small beta writes, large beta reads; no beta does both well\n");

    // ---- Screen 3: assist selection (Fig. 8) ------------------------------
    println!("== Screen 3: WA vs RA techniques (corner score: lower = better) ==");
    let wa_betas = [1.2, 1.8, 2.5];
    let ra_betas = [0.4, 0.6, 0.8];
    // Scales for the corner score: 1 ns of WL_crit trades against 100 mV of
    // DRNM.
    let (wl_scale, drnm_scale) = (1e-9, 0.1);
    let mut best: Option<(String, f64)> = None;
    for wa in WriteAssist::ALL {
        let curve = wa_tradeoff(&base, wa, &wa_betas)?;
        report(
            &curve.label,
            corner_score(&curve, wl_scale, drnm_scale),
            &mut best,
        );
    }
    for ra in ReadAssist::ALL {
        let curve = ra_tradeoff(&base, ra, &ra_betas)?;
        report(
            &curve.label,
            corner_score(&curve, wl_scale, drnm_scale),
            &mut best,
        );
    }
    let (winner, _) = best.expect("at least one technique scores");
    println!("-> selected technique: {winner}");

    // ---- Final design ------------------------------------------------------
    let final_params = base.clone().with_beta(0.6);
    let read = read_metrics(&final_params, Some(ReadAssist::GndLowering))?;
    let wl = wl_crit(&final_params, None)?;
    println!("\n== Final design: beta = 0.6 + GND-lowering RA ==");
    println!("DRNM = {:.1} mV, WL_crit = {:?}", read.drnm * 1e3, wl);
    Ok(())
}

fn report(label: &str, score: Option<f64>, best: &mut Option<(String, f64)>) {
    match score {
        Some(s) => {
            println!("{label:<24} corner score {s:+.3}");
            if best.as_ref().is_none_or(|(_, b)| s < *b) {
                *best = Some((label.to_string(), s));
            }
        }
        None => println!("{label:<24} no writable point"),
    }
}
