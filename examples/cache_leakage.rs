//! Cache leakage: the paper's motivating scenario, quantified.
//!
//! The DATE'11 introduction argues that SRAM dominates processor static
//! power and that TFET cells can cut it by orders of magnitude. This example
//! scales the measured per-cell hold power up to realistic cache arrays
//! (32 KB L1 / 256 KB L2 / 8 MB LLC) across the supply range and prints the
//! projected array leakage for the CMOS baseline and the proposed TFET cell.
//!
//! Run with: `cargo run --release --example cache_leakage`

use tfet_sram::metrics::static_power;
use tfet_sram::prelude::*;

/// Cache configurations: (label, capacity in bytes).
const CACHES: [(&str, usize); 3] = [
    ("32 KB L1", 32 << 10),
    ("256 KB L2", 256 << 10),
    ("8 MB LLC", 8 << 20),
];

fn main() -> Result<(), SramError> {
    println!("Per-cell hold power and projected array leakage");
    println!("(6T cells; one cell per bit; peripheral leakage excluded)\n");

    for vdd in [0.5, 0.6, 0.7, 0.8] {
        let cmos = static_power(&CellParams::cmos6t().with_beta(1.5).with_vdd(vdd))?;
        let tfet = static_power(
            &CellParams::tfet6t(AccessConfig::InwardP)
                .with_beta(0.6)
                .with_vdd(vdd),
        )?;
        println!(
            "VDD = {vdd:.1} V: cell leakage CMOS {cmos:9.2e} W, TFET {tfet:9.2e} W ({:.1} orders)",
            (cmos / tfet).log10()
        );
        for (label, bytes) in CACHES {
            let bits = (bytes * 8) as f64;
            println!(
                "    {label:>9}: CMOS {:9.3e} W   TFET {:9.3e} W",
                cmos * bits,
                tfet * bits
            );
        }
    }

    println!(
        "\nA CMOS LLC leaks milliwatts from cell arrays alone; the TFET array\n\
         leakage is below a nanowatt — the 6–7 order gap the paper reports,\n\
         at array scale."
    );
    Ok(())
}
